//! Arithmetic-circuit kernel throughput: flat-tape vs enum-walk, for every
//! kernel the stack runs — the perf contract of the `AcTape` lowering.
//!
//! Per circuit size (QAOA p=1, 3-regular):
//! * `amp/s` — scalar upward passes per second *as the stack issues them*:
//!   bound amplitude queries sweeping the output basis (the wavefunction /
//!   probability-reconstruction access pattern, where consecutive queries
//!   differ in a few evidence variables and the tape's delta kernel
//!   recomputes only the dirty cone). Enum walk vs tape (`t`-prefixed
//!   column), `ax` their ratio.
//! * `updown/s` — combined upward+downward differential passes (the Gibbs
//!   transition kernel) with fully changing weights — the tape's
//!   no-allocation, no-HashMap full pass vs the enum walk; `udx` the
//!   ratio.
//! * `batch/s` — bindings per second through the k-lane batched upward
//!   pass (k = 16, two lane blocks) *as a parameter sweep issues them*:
//!   one parameter's weights change between consecutive bindings, the
//!   enum walk re-walks the arena, the tape rides the batch delta kernel
//!   over the lane-blocked planes. Enum vs tape, and `bx` the ratio
//!   (gated ≥ 1.5× at the default sizes).
//! * `gibbs/s` — full Gibbs transitions per second on a live sampler,
//!   enum-walk kernel vs tape kernel (delta cone per accepted move, free
//!   re-use on held moves), and `gx` the ratio.
//!
//! Every measured pair is also checked bit-for-bit: the tape result must
//! equal the enum result exactly (the determinism contract lowering
//! preserves). The JSON datapoint additionally records the raw
//! full-recompute upward pass (`*_full_upward_per_sec`), where the two
//! representations are arithmetic-bound and close to parity — the flat
//! tape wins by *keeping state*, not by re-walking faster.
//!
//! Appends one machine-readable datapoint to `BENCH_kernels.json`
//! (override the path with `QKC_BENCH_KERNELS_JSON`). The default quick
//! scale doubles as the CI smoke run.
//!
//! Run with: `cargo run --release --bin ac_kernels`
//! (`QKC_SCALE=paper` for larger circuits.)

use qkc_bench::{time, ResultTable, Scale};
use qkc_core::{KcOptions, KcSimulator};
use qkc_knowledge::{
    evaluate, evaluate_batch_into, evaluate_with_differentials, AcWeights, AcWeightsBatch,
    GibbsOptions, GibbsSampler, LaneBlock, QueryVar, TapeEvaluator, LANE_WIDTH,
};
use qkc_math::Complex;
use qkc_workloads::{Graph, QaoaMaxCut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;

const BATCH_K: usize = 2 * LANE_WIDTH;

/// Floor on `batch_speedup` (tape batch vs enum batch) at the default
/// quick sizes — the lane-blocked layout's perf contract, enforced while
/// the numbers are measured (same pattern as the rehydrate and
/// analytic-gradient gates).
const MIN_BATCH_SPEEDUP: f64 = 1.5;

struct Row {
    qubits: usize,
    ac_nodes: usize,
    tape_bytes: usize,
    enum_amp_per_sec: f64,
    tape_amp_per_sec: f64,
    enum_full_up_per_sec: f64,
    tape_full_up_per_sec: f64,
    enum_updown_per_sec: f64,
    tape_updown_per_sec: f64,
    enum_batch_per_sec: f64,
    tape_batch_per_sec: f64,
    enum_gibbs_per_sec: f64,
    tape_gibbs_per_sec: f64,
}

fn bits_eq(a: Complex, b: Complex) -> bool {
    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
}

/// Random non-degenerate weights over every CNF variable, representative
/// of a bound parameterized circuit.
fn random_weights(num_vars: usize, rng: &mut StdRng) -> AcWeights {
    let mut w = AcWeights::uniform(num_vars);
    for v in 1..=num_vars as u32 {
        w.set(
            v,
            Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
            Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
        );
    }
    w
}

fn query_vars(sim: &KcSimulator) -> Vec<QueryVar> {
    sim.query()
        .iter()
        .map(|spec| {
            let free = spec.free_values();
            if let Some(_v) = spec.forced_value() {
                QueryVar {
                    label: spec.label.clone(),
                    value_lits: Vec::new(),
                    fixed: Some(0),
                }
            } else {
                QueryVar {
                    label: spec.label.clone(),
                    value_lits: free.iter().map(|&(_, l)| l).collect(),
                    fixed: None,
                }
            }
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = scale.pick(vec![6, 8, 10], vec![8, 12, 16]);
    let passes: usize = scale.pick(200, 1000);
    let gibbs_steps = scale.pick(400, 4000);
    let repeats = scale.pick(3, 3);

    let mut table = ResultTable::new(
        format!("AC kernel throughput: enum walk vs flat tape (batch k={BATCH_K})"),
        &[
            "qubits", "nodes", "tapeB", "amp/s", "tamp/s", "ax", "updown/s", "tud/s", "udx",
            "batch/s", "tb/s", "bx", "gibbs/s", "tg/s", "gx",
        ],
    );
    let mut rows: Vec<Row> = Vec::new();

    for &n in &sizes {
        let qaoa = QaoaMaxCut::new(Graph::random_regular(n, 3, 3), 1);
        let sim = KcSimulator::compile(&qaoa.circuit(), &KcOptions::default());
        let nnf = sim.nnf();
        let tape = sim.tape();
        let num_vars = sim.encoding().cnf.num_vars();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let weights = random_weights(num_vars, &mut rng);
        let mut eval = TapeEvaluator::new();

        // Equivalence spot-checks before timing.
        assert!(
            bits_eq(eval.evaluate(tape, &weights), evaluate(nnf, &weights)),
            "tape upward diverged from enum walk at n={n}"
        );
        let tape_value = eval.differentials(tape, &weights);
        let enum_diffs = evaluate_with_differentials(nnf, &weights);
        assert!(bits_eq(tape_value, enum_diffs.value));

        // Interleave enum/tape repeats and keep the best time of each, so
        // host noise cannot skew one side of the ratio.
        let mut enum_amp = f64::INFINITY;
        let mut tape_amp = f64::INFINITY;
        let mut enum_up = f64::INFINITY;
        let mut tape_up = f64::INFINITY;
        let mut enum_ud = f64::INFINITY;
        let mut tape_ud = f64::INFINITY;
        let mut enum_b = f64::INFINITY;
        let mut tape_b = f64::INFINITY;
        let mut batch = AcWeightsBatch::uniform(num_vars, BATCH_K);
        for lane in 0..BATCH_K {
            let w = random_weights(num_vars, &mut rng);
            for v in 1..=num_vars as u32 {
                batch.set_lane(v, lane, w.get(v as i32), w.get(-(v as i32)));
            }
        }
        let mut enum_batch_vals: Vec<LaneBlock> = Vec::new();
        let mut enum_batch_buf: Vec<Complex> = Vec::new();
        let batch_steps = passes.div_ceil(BATCH_K).max(4) * 4;
        let sweep_seed = 0xBA7C ^ n as u64;
        // Prime the sweep state: apply one untimed pass of the write
        // sequence so every timed sweep — enum or tape, any repeat —
        // starts and ends at the identical deterministic weight state
        // (the writes are absolute, so replaying the sequence is
        // idempotent on the end state).
        {
            let mut sweep = StdRng::seed_from_u64(sweep_seed);
            for step in 0..batch_steps {
                let v = 1 + (step % num_vars) as u32;
                for lane in 0..BATCH_K {
                    batch.set_lane(
                        v,
                        lane,
                        Complex::new(sweep.gen::<f64>() - 0.5, sweep.gen::<f64>() - 0.5),
                        Complex::new(sweep.gen::<f64>() - 0.5, sweep.gen::<f64>() - 0.5),
                    );
                }
            }
        }

        // Scalar amplitude queries as the stack issues them: bind once,
        // reconstruct the full wavefunction. The tape path
        // (`BoundKc::wavefunction`) rides the delta kernel in Gray-code
        // order; the enum path re-walks the arena per basis state. Same
        // evidence handling, asserted bitwise-equal amplitudes.
        let bound = sim.bind(&qaoa.default_params()).expect("bind");
        let dim = 1usize << n;
        let mut assignment = vec![0usize; sim.query().len()];
        let amp_sweeps = (passes / dim).max(1);
        for _ in 0..repeats {
            let (wf_enum, t) = time(|| {
                let mut wf = Vec::new();
                for _ in 0..amp_sweeps {
                    wf = (0..dim)
                        .map(|x| {
                            for (i, v) in assignment[..n].iter_mut().enumerate() {
                                *v = (x >> (n - 1 - i)) & 1;
                            }
                            bound.amplitude_assignment_enum_walk(&assignment)
                        })
                        .collect();
                }
                wf
            });
            enum_amp = enum_amp.min(t);
            let (wf_tape, t) = time(|| {
                let mut wf = Vec::new();
                for _ in 0..amp_sweeps {
                    wf = bound.wavefunction();
                }
                wf
            });
            tape_amp = tape_amp.min(t);
            for (x, (&e, &g)) in wf_enum.iter().zip(&wf_tape).enumerate() {
                assert!(bits_eq(e, g), "amplitude {x} diverged");
            }
        }

        for _ in 0..repeats {
            // Raw full-recompute upward passes (JSON only): both sides
            // arithmetic-bound, expected near parity.
            let (acc_enum, t) = time(|| {
                let mut acc = Complex::new(0.0, 0.0);
                for _ in 0..passes {
                    acc += evaluate(nnf, &weights);
                }
                acc
            });
            enum_up = enum_up.min(t);
            let (acc_tape, t) = time(|| {
                let mut acc = Complex::new(0.0, 0.0);
                for _ in 0..passes {
                    acc += eval.evaluate(tape, &weights);
                }
                acc
            });
            tape_up = tape_up.min(t);
            assert!(bits_eq(acc_enum, acc_tape), "upward sums diverged");

            let (acc_enum, t) = time(|| {
                let mut acc = Complex::new(0.0, 0.0);
                for _ in 0..passes {
                    acc += evaluate_with_differentials(nnf, &weights).value;
                }
                acc
            });
            enum_ud = enum_ud.min(t);
            let (acc_tape, t) = time(|| {
                let mut acc = Complex::new(0.0, 0.0);
                for _ in 0..passes {
                    acc += eval.differentials(tape, &weights);
                }
                acc
            });
            tape_ud = tape_ud.min(t);
            assert!(bits_eq(acc_enum, acc_tape), "differential sums diverged");

            // Batched bindings as a parameter sweep issues them: between
            // consecutive k-lane bindings one circuit parameter's weights
            // change (in every lane). The enum walk re-walks the arena per
            // step; the tape rides the batch delta kernel, recomputing only
            // the dirty cone. Both sides apply the identical weight
            // sequence (same seeded RNG) and the accumulated sums are
            // asserted bit-equal.
            let (acc_enum, t) = time(|| {
                let mut acc = Complex::new(0.0, 0.0);
                let mut sweep = StdRng::seed_from_u64(sweep_seed);
                for step in 0..batch_steps {
                    let v = 1 + (step % num_vars) as u32;
                    for lane in 0..BATCH_K {
                        batch.set_lane(
                            v,
                            lane,
                            Complex::new(sweep.gen::<f64>() - 0.5, sweep.gen::<f64>() - 0.5),
                            Complex::new(sweep.gen::<f64>() - 0.5, sweep.gen::<f64>() - 0.5),
                        );
                    }
                    let roots =
                        evaluate_batch_into(nnf, &batch, &mut enum_batch_vals, &mut enum_batch_buf);
                    for &r in roots {
                        acc += r;
                    }
                }
                acc
            });
            enum_b = enum_b.min(t);
            let (acc_tape, t) = time(|| {
                let mut acc = Complex::new(0.0, 0.0);
                let mut sweep = StdRng::seed_from_u64(sweep_seed);
                for step in 0..batch_steps {
                    let v = 1 + (step % num_vars) as u32;
                    for lane in 0..BATCH_K {
                        batch.set_lane(
                            v,
                            lane,
                            Complex::new(sweep.gen::<f64>() - 0.5, sweep.gen::<f64>() - 0.5),
                            Complex::new(sweep.gen::<f64>() - 0.5, sweep.gen::<f64>() - 0.5),
                        );
                    }
                    for &r in eval.evaluate_batch_delta(tape, &batch, &[v]) {
                        acc += r;
                    }
                }
                acc
            });
            tape_b = tape_b.min(t);
            assert!(bits_eq(acc_enum, acc_tape), "batched sums diverged");
        }

        // Gibbs transitions on live samplers: same seed, both kernels; the
        // chains are bit-identical, so comparing their final states doubles
        // as an end-to-end equivalence check.
        let vars = query_vars(&sim);
        let options = GibbsOptions {
            warmup: 50,
            thin: 1,
            seed: 12,
            ..Default::default()
        };
        let mut enum_g = f64::INFINITY;
        let mut tape_g = f64::INFINITY;
        let mut final_states: Option<(Vec<usize>, Vec<usize>)> = None;
        for _ in 0..repeats {
            let mut enum_sampler = GibbsSampler::new_enum_walk(
                nnf,
                AcWeights::uniform(num_vars),
                vars.clone(),
                &options,
            );
            let (_, t) = time(|| {
                for _ in 0..gibbs_steps {
                    enum_sampler.step();
                }
            });
            enum_g = enum_g.min(t);
            let mut tape_sampler =
                GibbsSampler::new(tape, AcWeights::uniform(num_vars), vars.clone(), &options);
            let (_, t) = time(|| {
                for _ in 0..gibbs_steps {
                    tape_sampler.step();
                }
            });
            tape_g = tape_g.min(t);
            final_states = Some((enum_sampler.state().to_vec(), tape_sampler.state().to_vec()));
        }
        if let Some((enum_state, tape_state)) = final_states {
            assert_eq!(enum_state, tape_state, "gibbs chains diverged at n={n}");
        }

        let batch_bindings = (batch_steps * BATCH_K) as f64;
        let amp_queries = (amp_sweeps * dim) as f64;
        let row = Row {
            qubits: n,
            ac_nodes: sim.metrics().ac_nodes,
            tape_bytes: sim.metrics().ac_size_bytes,
            enum_amp_per_sec: amp_queries / enum_amp,
            tape_amp_per_sec: amp_queries / tape_amp,
            enum_full_up_per_sec: passes as f64 / enum_up,
            tape_full_up_per_sec: passes as f64 / tape_up,
            enum_updown_per_sec: passes as f64 / enum_ud,
            tape_updown_per_sec: passes as f64 / tape_ud,
            enum_batch_per_sec: batch_bindings / enum_b,
            tape_batch_per_sec: batch_bindings / tape_b,
            enum_gibbs_per_sec: gibbs_steps as f64 / enum_g,
            tape_gibbs_per_sec: gibbs_steps as f64 / tape_g,
        };
        // Perf regression gate on the lane-blocked batch path, enforced at
        // the default quick sizes where CI runs this binary.
        if scale == Scale::Quick {
            let batch_speedup = row.tape_batch_per_sec / row.enum_batch_per_sec;
            assert!(
                batch_speedup >= MIN_BATCH_SPEEDUP,
                "batch_speedup regressed at n={n}: {batch_speedup:.3} < {MIN_BATCH_SPEEDUP}"
            );
        }
        table.row(vec![
            row.qubits.to_string(),
            row.ac_nodes.to_string(),
            row.tape_bytes.to_string(),
            format!("{:.0}", row.enum_amp_per_sec),
            format!("{:.0}", row.tape_amp_per_sec),
            format!("{:.2}x", row.tape_amp_per_sec / row.enum_amp_per_sec),
            format!("{:.0}", row.enum_updown_per_sec),
            format!("{:.0}", row.tape_updown_per_sec),
            format!("{:.2}x", row.tape_updown_per_sec / row.enum_updown_per_sec),
            format!("{:.0}", row.enum_batch_per_sec),
            format!("{:.0}", row.tape_batch_per_sec),
            format!("{:.2}x", row.tape_batch_per_sec / row.enum_batch_per_sec),
            format!("{:.0}", row.enum_gibbs_per_sec),
            format!("{:.0}", row.tape_gibbs_per_sec),
            format!("{:.2}x", row.tape_gibbs_per_sec / row.enum_gibbs_per_sec),
        ]);
        rows.push(row);
    }
    table.print();
    println!(
        "\nevery pair is bit-for-bit checked while it is measured; `t*` \
         columns are the flat-tape kernels (persistent evaluator buffers, \
         delta recompute of the dirty cone between queries, zero \
         allocations per pass), the others the enum-arena reference walk. \
         amp/s sweeps the output basis through a bound artifact — the \
         wavefunction / probability-reconstruction access pattern."
    );

    if let Err(e) = write_json(&rows) {
        eprintln!("warning: could not write BENCH_kernels.json: {e}");
    }
}

/// Appends this run's datapoint to the JSON-lines trajectory file: one
/// self-contained JSON object per run, newest last.
fn write_json(rows: &[Row]) -> std::io::Result<()> {
    let path = std::env::var("QKC_BENCH_KERNELS_JSON")
        .unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut row_json: Vec<String> = Vec::new();
    for r in rows {
        row_json.push(format!(
            "{{\"qubits\":{},\"ac_nodes\":{},\"tape_bytes\":{},\
             \"enum_upward_per_sec\":{:.1},\"tape_upward_per_sec\":{:.1},\
             \"upward_speedup\":{:.3},\
             \"enum_full_upward_per_sec\":{:.1},\
             \"tape_full_upward_per_sec\":{:.1},\
             \"full_upward_speedup\":{:.3},\
             \"enum_updown_per_sec\":{:.1},\"tape_updown_per_sec\":{:.1},\
             \"updown_speedup\":{:.3},\
             \"enum_batch_bindings_per_sec\":{:.1},\
             \"tape_batch_bindings_per_sec\":{:.1},\"batch_speedup\":{:.3},\
             \"enum_gibbs_steps_per_sec\":{:.1},\
             \"tape_gibbs_steps_per_sec\":{:.1},\"gibbs_speedup\":{:.3}}}",
            r.qubits,
            r.ac_nodes,
            r.tape_bytes,
            r.enum_amp_per_sec,
            r.tape_amp_per_sec,
            r.tape_amp_per_sec / r.enum_amp_per_sec,
            r.enum_full_up_per_sec,
            r.tape_full_up_per_sec,
            r.tape_full_up_per_sec / r.enum_full_up_per_sec,
            r.enum_updown_per_sec,
            r.tape_updown_per_sec,
            r.tape_updown_per_sec / r.enum_updown_per_sec,
            r.enum_batch_per_sec,
            r.tape_batch_per_sec,
            r.tape_batch_per_sec / r.enum_batch_per_sec,
            r.enum_gibbs_per_sec,
            r.tape_gibbs_per_sec,
            r.tape_gibbs_per_sec / r.enum_gibbs_per_sec,
        ));
    }
    let datapoint = format!(
        "{{\"bench\":\"ac_kernels\",\"unix_time\":{unix_time},\
         \"batch_width\":{BATCH_K},\"rows\":[{}]}}\n",
        row_json.join(",")
    );
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    file.write_all(datapoint.as_bytes())?;
    println!("\nappended datapoint to {path}");
    Ok(())
}
