//! Figure 3: the output measurement distribution of a QAOA circuit is
//! sharply peaked — a few bitstrings dominate — which is why *sampling*
//! beats computing the full wavefunction for variational workloads. Prints
//! the rank-ordered exact distribution alongside empirical ideal-sampling
//! and Gibbs-sampling distributions (panels (a)–(d) of the figure).

use qkc_bench::{ResultTable, Scale};
use qkc_core::KcSimulator;
use qkc_knowledge::GibbsOptions;
use qkc_math::{AliasTable, EmpiricalDistribution};
use qkc_statevector::StateVectorSimulator;
use qkc_workloads::{Graph, QaoaMaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(8, 10);
    let shots = scale.pick(20_000, 100_000);
    let qaoa = QaoaMaxCut::new(Graph::random_regular(n, 3, 4), 1);
    let params = qaoa.default_params();

    let exact = StateVectorSimulator::new()
        .probabilities(&qaoa.circuit(), &params)
        .expect("sv");

    // Ideal sampling from the known distribution.
    let mut rng = StdRng::seed_from_u64(12);
    let table = AliasTable::new(&exact).expect("distribution");
    let mut ideal = EmpiricalDistribution::new(exact.len());
    for _ in 0..shots {
        ideal.record(table.sample(&mut rng));
    }

    // Gibbs sampling from the compiled arithmetic circuit.
    let sim = KcSimulator::compile(&qaoa.circuit(), &Default::default());
    let bound = sim.bind(&params).expect("bind");
    let mut sampler = bound.sampler(&GibbsOptions {
        warmup: 500,
        seed: 13,
        ..Default::default()
    });
    let mut gibbs = EmpiricalDistribution::new(exact.len());
    for x in sampler.sample_outputs(shots, 2) {
        gibbs.record(x);
    }

    // Rank outcomes by exact probability.
    let mut ranked: Vec<usize> = (0..exact.len()).collect();
    ranked.sort_by(|&a, &b| exact[b].total_cmp(&exact[a]));

    let mut out = ResultTable::new(
        format!("Figure 3: rank-ordered measurement probabilities ({n}-qubit QAOA)"),
        &[
            "rank",
            "bitstring",
            "exact",
            "ideal_sampled",
            "gibbs_sampled",
        ],
    );
    let print_ranks: Vec<usize> = [0usize, 1, 2, 3, 4, 7, 15, 31, 63, 127, 255]
        .iter()
        .copied()
        .filter(|&r| r < ranked.len())
        .collect();
    for r in print_ranks {
        let x = ranked[r];
        out.row(vec![
            (r + 1).to_string(),
            format!("{x:0width$b}", width = n),
            format!("{:.5}", exact[x]),
            format!("{:.5}", ideal.probability(x)),
            format!("{:.5}", gibbs.probability(x)),
        ]);
    }
    out.print();

    // Peakedness summary: mass captured by the top k outcomes.
    let mut summary = ResultTable::new(
        "Peakedness: cumulative exact mass of top-k outcomes",
        &["top_k", "mass"],
    );
    let mut acc = 0.0;
    let mut next_k = 1;
    for (i, &x) in ranked.iter().enumerate() {
        acc += exact[x];
        if i + 1 == next_k {
            summary.row(vec![next_k.to_string(), format!("{acc:.4}")]);
            next_k *= 4;
        }
    }
    summary.print();
    println!("\nShape check: the distribution is sharply peaked — a handful of");
    println!("bitstrings carry most of the mass, so sampling (panel d) is far");
    println!("cheaper than tabulating all 2^n probabilities (panel a).");
}
