//! Figure 7: sampling error (KL divergence against the exact measurement
//! distribution) vs number of samples, for Gibbs sampling from the compiled
//! arithmetic circuit and for ideal (direct) sampling from the fully known
//! distribution — on (a) a noise-free QAOA circuit and (b) a noisy QAOA
//! circuit with 0.5% depolarizing after each gate.
//!
//! Expected shape (paper §3.3.3): both curves fall with sample count and
//! converge to the same distribution; Gibbs tracks slightly above ideal
//! because of MCMC warm-up and mixing.

use qkc_bench::{ResultTable, Scale};
use qkc_circuit::NoiseChannel;
use qkc_core::KcSimulator;
use qkc_densitymatrix::DensityMatrixSimulator;
use qkc_knowledge::GibbsOptions;
use qkc_math::{empirical_kl, AliasTable, EmpiricalDistribution};
use qkc_statevector::StateVectorSimulator;
use qkc_workloads::{Graph, QaoaMaxCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sweep(title: &str, exact: &[f64], mut next_gibbs: impl FnMut() -> usize, checkpoints: &[usize]) {
    let mut table = ResultTable::new(title, &["samples", "kl_gibbs", "kl_ideal"]);
    let n_outcomes = exact.len();
    let ideal_table = AliasTable::new(exact).expect("valid distribution");
    let mut rng = StdRng::seed_from_u64(99);
    let mut gibbs_emp = EmpiricalDistribution::new(n_outcomes);
    let mut ideal_emp = EmpiricalDistribution::new(n_outcomes);
    let mut drawn = 0usize;
    for &target in checkpoints {
        while drawn < target {
            gibbs_emp.record(next_gibbs());
            ideal_emp.record(ideal_table.sample(&mut rng));
            drawn += 1;
        }
        table.row(vec![
            target.to_string(),
            format!("{:.4}", empirical_kl(&gibbs_emp, exact)),
            format!("{:.4}", empirical_kl(&ideal_emp, exact)),
        ]);
    }
    table.print();
}

fn main() {
    let scale = Scale::from_env();
    let checkpoints: Vec<usize> = scale.pick(
        vec![1, 10, 100, 1000, 10_000],
        vec![1, 10, 100, 1000, 10_000, 100_000],
    );

    // (a) Noise-free QAOA (paper: 16 qubits; quick: 8).
    let n_ideal = scale.pick(8, 16);
    let qaoa = QaoaMaxCut::new(Graph::random_regular(n_ideal, 3, 5), 1);
    let params = qaoa.default_params();
    let exact = StateVectorSimulator::new()
        .probabilities(&qaoa.circuit(), &params)
        .expect("sv");
    let sim = KcSimulator::compile(&qaoa.circuit(), &Default::default());
    let bound = sim.bind(&params).expect("bind");
    let mut sampler = bound.sampler(&GibbsOptions {
        warmup: 500,
        seed: 7,
        ..Default::default()
    });
    sweep(
        &format!("Figure 7(a): {n_ideal}-qubit noise-free QAOA"),
        &exact,
        || sampler.sample_outputs(1, 2)[0],
        &checkpoints,
    );

    // (b) Noisy QAOA (paper: 8 qubits; quick: 4).
    let n_noisy = scale.pick(4, 8);
    let qaoa_n = QaoaMaxCut::new(Graph::random_regular(n_noisy, 3, 6), 1);
    let noisy = qaoa_n
        .circuit()
        .with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
    let params_n = qaoa_n.default_params();
    let exact_n = DensityMatrixSimulator::new()
        .probabilities(&noisy, &params_n)
        .expect("dm");
    let sim_n = KcSimulator::compile(&noisy, &Default::default());
    let bound_n = sim_n.bind(&params_n).expect("bind");
    let mut sampler_n = bound_n.sampler(&GibbsOptions {
        warmup: 800,
        seed: 8,
        ..Default::default()
    });
    sweep(
        &format!("Figure 7(b): {n_noisy}-qubit noisy QAOA (0.5% depolarizing)"),
        &exact_n,
        || sampler_n.sample_outputs(1, 2)[0],
        &checkpoints,
    );

    println!("\nShape check: both KL curves decrease toward 0 with more samples;");
    println!("Gibbs sits slightly above ideal sampling (warm-up and mixing cost).");
}
