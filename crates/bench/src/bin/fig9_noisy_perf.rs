//! Figure 9: time to draw 1000 samples from *noisy* QAOA and VQE circuits
//! (0.5% symmetric depolarizing after each gate) — density-matrix baseline
//! vs knowledge compilation.
//!
//! Expected shape (paper §4.2): the density matrix costs 4^n memory and
//! matrix–matrix work, so knowledge compilation breaks even around eight
//! qubits — earlier than the ideal-circuit case.

use qkc_bench::{fmt_secs, time, ResultTable, Scale};
use qkc_circuit::{Circuit, NoiseChannel, ParamMap};
use qkc_core::KcSimulator;
use qkc_densitymatrix::DensityMatrixSimulator;
use qkc_knowledge::GibbsOptions;
use qkc_workloads::{Graph, QaoaMaxCut, VqeIsing};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHOTS: usize = 1000;
const NOISE_P: f64 = 0.005;

fn dm_time(circuit: &Circuit, params: &ParamMap) -> f64 {
    let sim = DensityMatrixSimulator::new();
    let mut rng = StdRng::seed_from_u64(1);
    time(|| sim.sample(circuit, params, SHOTS, &mut rng).expect("dm")).1
}

fn kc_times(circuit: &Circuit, params: &ParamMap) -> (f64, f64) {
    let (sim, compile_s) = time(|| KcSimulator::compile(circuit, &Default::default()));
    let bound = sim.bind(params).expect("bind");
    let sample_s = time(|| {
        let mut sampler = bound.sampler(&GibbsOptions {
            warmup: 100,
            seed: 3,
            ..Default::default()
        });
        sampler.sample_outputs(SHOTS, 1)
    })
    .1;
    (compile_s, sample_s)
}

fn run_sweep(label: &str, configs: Vec<(usize, Circuit, ParamMap)>, dm_cap: usize, kc_cap: usize) {
    let mut table = ResultTable::new(
        format!("Figure 9 {label}: seconds to draw {SHOTS} samples (noisy)"),
        &[
            "qubits",
            "noise_ops",
            "density_matrix",
            "kc_sample",
            "kc_compile",
        ],
    );
    for (n, circuit, params) in configs {
        let dm = if n <= dm_cap {
            fmt_secs(dm_time(&circuit, &params))
        } else {
            "-".into()
        };
        let (kc_c, kc_s) = if n <= kc_cap {
            let (c, s) = kc_times(&circuit, &params);
            (fmt_secs(c), fmt_secs(s))
        } else {
            ("-".into(), "-".into())
        };
        table.row(vec![
            n.to_string(),
            circuit.num_noise_ops().to_string(),
            dm,
            kc_s,
            kc_c,
        ]);
    }
    table.print();
}

fn main() {
    let scale = Scale::from_env();
    let noise = NoiseChannel::depolarizing(NOISE_P);
    let qaoa_sizes: Vec<usize> = scale.pick(vec![4, 5, 6, 7], vec![4, 6, 8, 10, 12]);
    let vqe_grids: Vec<(usize, usize)> =
        scale.pick(vec![(2, 2), (2, 3)], vec![(2, 2), (2, 3), (2, 4), (3, 3)]);
    let dm_cap = scale.pick(8, 12);
    let kc_cap = scale.pick(8, 12);

    for iterations in [1usize, 2] {
        let configs: Vec<(usize, Circuit, ParamMap)> = qaoa_sizes
            .iter()
            .map(|&n| {
                // d-regular needs n·d even: use degree 3 when possible,
                // degree 2 (a cycle-like graph) for odd n.
                let d = if n * 3 % 2 == 0 { 3.min(n - 1) } else { 2 };
                let qaoa = QaoaMaxCut::new(Graph::random_regular(n, d, 7 + n as u64), iterations);
                let noisy = qaoa.circuit().with_noise_after_each_gate(&noise);
                (n, noisy, qaoa.default_params())
            })
            .collect();
        run_sweep(
            &format!("(noisy QAOA Max-Cut, iterations={iterations})"),
            configs,
            dm_cap,
            if iterations == 1 {
                kc_cap
            } else {
                kc_cap.min(6)
            },
        );
    }
    for iterations in [1usize, 2] {
        let configs: Vec<(usize, Circuit, ParamMap)> = vqe_grids
            .iter()
            .map(|&(w, h)| {
                let vqe = VqeIsing::new(w, h, iterations);
                let noisy = vqe.circuit().with_noise_after_each_gate(&noise);
                (w * h, noisy, vqe.default_params())
            })
            .collect();
        run_sweep(
            &format!("(noisy VQE 2-D Ising, iterations={iterations})"),
            configs,
            dm_cap,
            if iterations == 1 {
                kc_cap
            } else {
                kc_cap.min(6)
            },
        );
    }
    println!("\nShape check: density-matrix cost scales as 4^n; knowledge");
    println!("compilation's compiled-AC reuse wins beyond the break-even width.");
}
