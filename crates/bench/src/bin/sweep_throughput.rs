//! Engine sweep throughput: bindings/sec and cache-hit speedup on a
//! parameterized QAOA sweep — the perf baseline for the engine's
//! compile-once-bind-many contract.
//!
//! Per size and thread count:
//! * `bind/s` — raw scalar parameter re-binds against the cached artifact
//!   (the step a variational iteration pays before its queries);
//! * `bbind/s` — the same re-binds through `bind_batch` in lanes of
//!   `QKC_BATCH` (default: the engine's `DEFAULT_BATCH`, 16) points;
//! * `eval/s` — scalar bindings evaluated per second: bind + exact
//!   expectation of the cut observable, one AC traversal per basis state
//!   per point;
//! * `beval/s` — the k-lane path: `bind_batch` + batched expectations,
//!   one AC traversal per basis state per *lane of k points*;
//! * `batchx` — `beval/s` over `eval/s`. Since the flat-tape delta
//!   evaluator landed, the scalar path recomputes only the dirty cone
//!   between basis states, so it now beats the full-recompute lane
//!   kernel on larger circuits (ratios < 1) — which is why the engine's
//!   sweep executor routes exact queries through the scalar path;
//! * `sweep/s` — full engine sweep points per second;
//! * `speedup` — cold (compile + first point) time over warm per-point
//!   time: the cache-hit advantage every iteration after the first enjoys.
//!
//! A second section measures **gradient throughput** on a multi-angle
//! QAOA circuit (one symbol per edge and per vertex, the ma-QAOA ansatz):
//! * `angrad/s` — full gradients per second through the engine's primary
//!   analytic query (`Engine::gradient`): ONE tangent-carrying bind plus
//!   one differentials pass of the cached artifact yields every
//!   `∂⟨O⟩/∂θ` at once, independent of parameter count;
//! * `psgrad/s` — the same gradient by the parameter-shift rule (forced
//!   via the KC backend's shift cross-check path): every `θ ± π/2`
//!   shifted binding is a lane of one batched bind, `2p + 1` lanes;
//! * `fdgrad/s` — the same gradient by the scalar finite-difference path
//!   (`2p + 1` independent `Engine::expectation` calls, the best a caller
//!   could do before the gradient API);
//! * `anx` — `angrad/s` over `psgrad/s` (the one-pass analytic win;
//!   asserted ≥ 3x at ≥ 8 parameters, with all three gradients
//!   cross-checked numerically during measurement).
//!
//! A third section measures the **artifact lifecycle** (the spill tier
//! of the bounded cache):
//! * `compile` — the structural compilation a cold miss pays;
//! * `wire B` — the serialized artifact size ([`KcSimulator::to_bytes`]);
//! * `rehydrate` — reading + decoding the spill file back into a
//!   bit-identical simulator (verified during measurement);
//! * `rehydx` — compile time over rehydrate time: the factor by which a
//!   spill hit beats a recompile (asserted ≥ 5× at the largest size);
//! * `spillsw/s` — engine sweep points per second under a byte budget
//!   below the artifact size, so *every* query rehydrates from disk —
//!   the worst-case eviction-thrash floor, with its eviction/spill-hit
//!   counts.
//!
//! A fourth section measures **telemetry overhead** — the observability
//! contract that instrumentation is free when disabled:
//! * `base/s` — sweep points per second through a hand-inlined lane loop
//!   with *zero* instrumentation sites (what the executor cost before
//!   telemetry existed);
//! * `off/s` — the real [`SweepExecutor`] with telemetry disabled, where
//!   every site is one relaxed atomic load (asserted within 2% of
//!   `base/s`);
//! * `on/s` — the same executor with telemetry enabled (results asserted
//!   byte-identical in all three legs).
//!
//! Also appends one machine-readable datapoint to `BENCH_sweep.json`
//! (override the path with `QKC_BENCH_JSON`) so the perf trajectory
//! accumulates across runs/commits; CI uploads it as an artifact. Set
//! `QKC_TELEMETRY=1` to run the whole bench instrumented and append the
//! final telemetry snapshot to `BENCH_telemetry.jsonl` (override with
//! `QKC_TELEMETRY_JSONL`).
//!
//! Run with: `cargo run --release --bin sweep_throughput`
//! (`QKC_SCALE=paper` for the larger sweep.)

use qkc_bench::{fmt_secs, time, ResultTable, Scale};
use qkc_circuit::{Circuit, Param, ParamMap};
use qkc_core::{KcOptions, KcSimulator};
use qkc_engine::{
    ArtifactCache, Backend, BackendKind, CacheOptions, Engine, EngineOptions, KcBackend,
    SweepExecutor, SweepPoint, SweepSpec,
};
use qkc_workloads::{Graph, QaoaMaxCut};
use std::io::Write;

/// One measured row, for both the table and the JSON datapoint.
struct Row {
    qubits: usize,
    threads: usize,
    compile_secs: f64,
    scalar_binds_per_sec: f64,
    batched_binds_per_sec: f64,
    scalar_evals_per_sec: f64,
    batched_evals_per_sec: f64,
    sweep_points_per_sec: f64,
    cache_speedup: f64,
}

fn batch_width() -> usize {
    std::env::var("QKC_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&k: &usize| k >= 1)
        .unwrap_or(qkc_engine::DEFAULT_BATCH)
}

fn main() {
    // QKC_TELEMETRY=1 instruments the whole bench run; the snapshot is
    // exported as JSONL at the end. The overhead section below manages the
    // flag itself either way.
    qkc_engine::telemetry::init_from_env();
    let scale = Scale::from_env();
    let sizes: Vec<usize> = scale.pick(vec![6, 8, 10], vec![8, 12, 16]);
    let bindings = scale.pick(64, 256);
    let k = batch_width();

    let mut table = ResultTable::new(
        format!("Engine sweep throughput (QAOA p=1, 3-regular, batch k={k})"),
        &[
            "qubits", "compile", "bind/s", "bbind/s", "eval/s", "beval/s", "batchx", "sweep/s",
            "speedup", "threads",
        ],
    );
    let mut rows: Vec<Row> = Vec::new();

    for n in &sizes {
        let n = *n;
        let qaoa = QaoaMaxCut::new(Graph::random_regular(n, 3, 3), 1);
        let circuit = qaoa.circuit();
        let obs = qaoa.cut_observable();
        let params: Vec<ParamMap> = (0..bindings)
            .map(|i| {
                let g = 0.3 + 0.001 * i as f64;
                let b = 0.25 + 0.0007 * i as f64;
                qaoa.params(&[g], &[b])
            })
            .collect();

        for threads in [1usize, 8] {
            let engine =
                Engine::with_options(EngineOptions::default().with_threads(threads).with_batch(k));
            // Cold: the first expectation pays the structural compile.
            let (_, cold) = time(|| {
                engine
                    .expectation(&circuit, &params[0], &obs, 0, 1)
                    .expect("cold evaluation")
            });
            let artifact = engine
                .cache()
                .get_or_compile(&circuit, &engine.options().kc_options);
            // Scalar-vs-batched comparisons interleave their repeats and
            // keep the best time of each, so host noise (throttling, noisy
            // neighbors) cannot skew one side of the ratio.
            let repeats = scale.pick(3, 1);
            let mut bind_secs = f64::INFINITY;
            let mut bbind_secs = f64::INFINITY;
            let mut eval_secs = f64::INFINITY;
            let mut beval_secs = f64::INFINITY;
            for _ in 0..repeats {
                // Raw re-bind rate: scalar, then lanes of k via bind_batch.
                let (_, t) = time(|| {
                    for p in &params {
                        artifact.bind(p).expect("bind");
                    }
                });
                bind_secs = bind_secs.min(t);
                let (_, t) = time(|| {
                    for lane in params.chunks(k) {
                        artifact.bind_batch(lane).expect("bind_batch");
                    }
                });
                bbind_secs = bbind_secs.min(t);
                // Full per-binding work: bind + exact expectation of the
                // cut observable, scalar vs batched.
                let (scalar_total, t) = time(|| {
                    let mut total = 0.0;
                    for p in &params {
                        let bound = artifact.bind(p).expect("bind");
                        total += bound
                            .wavefunction()
                            .iter()
                            .map(|a| a.norm_sqr())
                            .enumerate()
                            .map(|(bits, pr)| pr * obs(bits))
                            .sum::<f64>();
                    }
                    total
                });
                eval_secs = eval_secs.min(t);
                let (batched_total, t) = time(|| {
                    let mut total = 0.0;
                    for lane in params.chunks(k) {
                        let bound = artifact.bind_batch(lane).expect("bind_batch");
                        total += bound.expectations(&obs).iter().sum::<f64>();
                    }
                    total
                });
                beval_secs = beval_secs.min(t);
                assert!(
                    (scalar_total - batched_total).abs() < 1e-9,
                    "batched expectations diverged from scalar"
                );
            }
            // Warm sweep: every point re-binds and takes an expectation.
            let (points, sweep_secs) = time(|| {
                engine
                    .sweep(
                        &circuit,
                        &params,
                        &SweepSpec::expectation(&obs).with_seed(1),
                    )
                    .expect("sweep")
            });
            assert_eq!(points.len(), bindings);
            assert_eq!(engine.cache().misses(), 1, "sweep must not recompile");
            let per_point = sweep_secs / bindings as f64;
            let row = Row {
                qubits: n,
                threads,
                compile_secs: cold,
                scalar_binds_per_sec: bindings as f64 / bind_secs,
                batched_binds_per_sec: bindings as f64 / bbind_secs,
                scalar_evals_per_sec: bindings as f64 / eval_secs,
                batched_evals_per_sec: bindings as f64 / beval_secs,
                sweep_points_per_sec: bindings as f64 / sweep_secs,
                cache_speedup: cold / per_point,
            };
            table.row(vec![
                row.qubits.to_string(),
                fmt_secs(row.compile_secs),
                format!("{:.0}", row.scalar_binds_per_sec),
                format!("{:.0}", row.batched_binds_per_sec),
                format!("{:.0}", row.scalar_evals_per_sec),
                format!("{:.0}", row.batched_evals_per_sec),
                format!(
                    "{:.2}x",
                    row.batched_evals_per_sec / row.scalar_evals_per_sec
                ),
                format!("{:.0}", row.sweep_points_per_sec),
                format!("{:.0}x", row.cache_speedup),
                row.threads.to_string(),
            ]);
            rows.push(row);
        }
    }
    table.print();
    println!(
        "\nspeedup = cold (compile + first query) time over warm per-point \
         time; bind/s is the raw parameter-rebinding rate and eval/s the \
         bind+expectation rate a variational iteration pays per point — \
         the `b` variants route lanes of k={k} points through one \
         arithmetic-circuit traversal whose delta-aware batch kernel \
         recomputes only the dirty cone per basis state, decoded once for \
         all lanes (bit-identical results); engine sweeps ride the same \
         batched path."
    );

    let grad_rows = gradient_section(&scale);
    let lifecycle_rows = lifecycle_section(&scale);
    let telemetry_rows = telemetry_section(&scale);

    if let Err(e) = write_json(&rows, &grad_rows, &lifecycle_rows, &telemetry_rows, k) {
        eprintln!("warning: could not write BENCH_sweep.json: {e}");
    }

    // Instrumented run: export the accumulated snapshot as one JSONL line.
    if qkc_engine::telemetry::enabled() {
        let path = std::env::var("QKC_TELEMETRY_JSONL")
            .unwrap_or_else(|_| "BENCH_telemetry.jsonl".to_string());
        match qkc_engine::telemetry::snapshot().append_jsonl(std::path::Path::new(&path)) {
            Ok(()) => println!("appended telemetry snapshot to {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

/// One measured telemetry-overhead row.
struct TelemetryRow {
    qubits: usize,
    baseline_points_per_sec: f64,
    disabled_points_per_sec: f64,
    enabled_points_per_sec: f64,
}

/// The observability contract, measured: a sweep through the executor with
/// telemetry disabled must cost within 2% of the same lane evaluation with
/// no instrumentation sites at all, and enabling telemetry must not change
/// a single output bit.
fn telemetry_section(scale: &Scale) -> Vec<TelemetryRow> {
    let sizes: Vec<usize> = scale.pick(vec![6, 8, 10], vec![8, 12, 16]);
    let bindings = scale.pick(64, 256);
    let repeats = scale.pick(7, 3);
    let k = batch_width();
    let was_enabled = qkc_engine::telemetry::set_enabled(false);
    let mut table = ResultTable::new(
        "Telemetry overhead (hand-inlined baseline vs executor, off/on)".to_string(),
        &["qubits", "base/s", "off/s", "on/s", "off/base", "on/base"],
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        let qaoa = QaoaMaxCut::new(Graph::random_regular(n, 3, 3), 1);
        let circuit = qaoa.circuit();
        let obs = qaoa.cut_observable();
        let params: Vec<ParamMap> = (0..bindings)
            .map(|i| qaoa.params(&[0.3 + 0.002 * i as f64], &[0.25 + 0.001 * i as f64]))
            .collect();
        let backend = KcBackend::new(
            std::sync::Arc::new(ArtifactCache::new()),
            KcOptions::default(),
        );
        let spec = SweepSpec::expectation(&obs).with_seed(7);
        let executor = SweepExecutor::new(1).with_batch(k);
        // Warm: the compile happens once here, so all three legs below
        // measure only the bind-and-evaluate economics.
        let want = executor
            .run(&backend, &circuit, &params, &spec)
            .expect("warm sweep");
        // Interleaved best-of-N, like every ratio in this bench: host noise
        // cannot skew one leg of the comparison.
        let mut base_secs = f64::INFINITY;
        let mut off_secs = f64::INFINITY;
        let mut on_secs = f64::INFINITY;
        for _ in 0..repeats {
            // Baseline: the executor's lane evaluation hand-inlined with
            // zero instrumentation sites — not even the disabled-path
            // atomic loads. This is what a sweep cost before telemetry.
            let (base_points, t) = time(|| {
                let mut out: Vec<SweepPoint> = Vec::with_capacity(params.len());
                for (lane_index, lane) in params.chunks(k).enumerate() {
                    let base = lane_index * k;
                    if lane.len() > 1 {
                        let values = backend
                            .expectation_batch(&circuit, lane, &obs)
                            .expect("expectation_batch");
                        for (j, v) in values.into_iter().enumerate() {
                            out.push(SweepPoint {
                                index: base + j,
                                expectation: Some(v),
                                exact: true,
                                samples: Vec::new(),
                            });
                        }
                    } else {
                        for (j, p) in lane.iter().enumerate() {
                            let probs = backend.probabilities(&circuit, p).expect("probabilities");
                            let value = probs
                                .iter()
                                .enumerate()
                                .map(|(bits, &pr)| pr * obs(bits))
                                .sum();
                            out.push(SweepPoint {
                                index: base + j,
                                expectation: Some(value),
                                exact: true,
                                samples: Vec::new(),
                            });
                        }
                    }
                }
                out
            });
            base_secs = base_secs.min(t);
            assert_eq!(
                base_points, want,
                "baseline loop diverged from the executor"
            );
            let (off_points, t) = time(|| {
                executor
                    .run(&backend, &circuit, &params, &spec)
                    .expect("sweep")
            });
            off_secs = off_secs.min(t);
            assert_eq!(off_points, want);
            qkc_engine::telemetry::set_enabled(true);
            let (on_points, t) = time(|| {
                executor
                    .run(&backend, &circuit, &params, &spec)
                    .expect("sweep")
            });
            qkc_engine::telemetry::set_enabled(false);
            on_secs = on_secs.min(t);
            assert_eq!(
                on_points, want,
                "enabling telemetry must not change results"
            );
        }
        let row = TelemetryRow {
            qubits: n,
            baseline_points_per_sec: bindings as f64 / base_secs,
            disabled_points_per_sec: bindings as f64 / off_secs,
            enabled_points_per_sec: bindings as f64 / on_secs,
        };
        table.row(vec![
            n.to_string(),
            format!("{:.0}", row.baseline_points_per_sec),
            format!("{:.0}", row.disabled_points_per_sec),
            format!("{:.0}", row.enabled_points_per_sec),
            format!(
                "{:.3}",
                row.disabled_points_per_sec / row.baseline_points_per_sec
            ),
            format!(
                "{:.3}",
                row.enabled_points_per_sec / row.baseline_points_per_sec
            ),
        ]);
        rows.push(row);
    }
    qkc_engine::telemetry::set_enabled(was_enabled);
    table.print();
    println!(
        "\nbase/s = a hand-inlined copy of the executor's lane loop with no \
         instrumentation sites; off/s = the real executor with telemetry \
         disabled (every site one relaxed atomic load); on/s = the same \
         with spans, counters, and histograms recording. All three legs' \
         outputs are asserted byte-identical while measuring."
    );
    // The overhead gate: disabled telemetry within 2% of uninstrumented.
    // Measured on best-of-N interleaved minima, so the ratio is stable.
    for r in &rows {
        assert!(
            r.disabled_points_per_sec >= 0.98 * r.baseline_points_per_sec,
            "disabled-telemetry sweep at {} qubits ran at {:.3}x the \
             uninstrumented baseline (contract: >= 0.98x)",
            r.qubits,
            r.disabled_points_per_sec / r.baseline_points_per_sec
        );
    }
    rows
}

/// One measured artifact-lifecycle row.
struct LifecycleRow {
    qubits: usize,
    compile_secs: f64,
    wire_bytes: usize,
    rehydrate_secs: f64,
    capped_sweep_points_per_sec: f64,
    evictions: u64,
    spill_hits: u64,
}

/// Rehydrate-vs-recompile economics plus the eviction-thrash sweep floor,
/// on the same QAOA family as the main section.
fn lifecycle_section(scale: &Scale) -> Vec<LifecycleRow> {
    let sizes: Vec<usize> = scale.pick(vec![6, 8, 10], vec![8, 12, 16]);
    let bindings = scale.pick(32, 128);
    let repeats = scale.pick(3, 2);
    let mut table = ResultTable::new(
        "Artifact lifecycle (spill write-through, rehydrate vs recompile)".to_string(),
        &[
            "qubits",
            "compile",
            "wire B",
            "rehydrate",
            "rehydx",
            "spillsw/s",
            "evict",
            "spillhit",
        ],
    );
    let spill_dir = std::env::temp_dir().join(format!("qkc-bench-spill-{}", std::process::id()));
    let mut rows = Vec::new();
    for &n in &sizes {
        let qaoa = QaoaMaxCut::new(Graph::random_regular(n, 3, 3), 1);
        let circuit = qaoa.circuit();
        let obs = qaoa.cut_observable();
        let options = KcOptions::default();

        // Interleaved best-of-N: compile vs (serialize + decode), with
        // bit-identity of the rehydrated artifact asserted while timing.
        let mut compile_secs = f64::INFINITY;
        let mut rehydrate_secs = f64::INFINITY;
        let mut wire_bytes = 0usize;
        let probe_params = qaoa.params(&[0.37], &[0.21]);
        for _ in 0..repeats {
            let (sim, t) = time(|| KcSimulator::compile(&circuit, &options));
            compile_secs = compile_secs.min(t);
            let bytes = sim.to_bytes(&circuit, &options);
            wire_bytes = bytes.len();
            let path = spill_dir.join(format!("bench-{n}.qkcart"));
            std::fs::create_dir_all(&spill_dir).expect("spill dir");
            std::fs::write(&path, &bytes).expect("write spill");
            let (back, t) = time(|| {
                let bytes = std::fs::read(&path).expect("read spill");
                KcSimulator::from_bytes(&circuit, &options, &bytes).expect("rehydrate")
            });
            rehydrate_secs = rehydrate_secs.min(t);
            let want = sim.bind(&probe_params).expect("bind").wavefunction();
            let got = back.bind(&probe_params).expect("bind").wavefunction();
            assert!(
                want.iter()
                    .zip(&got)
                    .all(|(a, b)| a.re.to_bits() == b.re.to_bits()
                        && a.im.to_bits() == b.im.to_bits()),
                "rehydrated artifact diverged from the compiled one"
            );
        }

        // Worst-case thrash: budget below the artifact, so every engine
        // query evicts and the next rehydrates from disk.
        let engine = Engine::with_options(
            EngineOptions::default()
                .with_backend(BackendKind::KnowledgeCompilation)
                .with_cache(
                    CacheOptions::default()
                        .with_max_resident_bytes(1)
                        .with_spill_dir(&spill_dir),
                ),
        );
        let params: Vec<ParamMap> = (0..bindings)
            .map(|i| qaoa.params(&[0.3 + 0.002 * i as f64], &[0.25 + 0.001 * i as f64]))
            .collect();
        let (points, sweep_secs) = time(|| {
            engine
                .sweep(
                    &circuit,
                    &params,
                    &SweepSpec::expectation(&obs).with_seed(1),
                )
                .expect("capped sweep")
        });
        assert_eq!(points.len(), bindings);
        let stats = engine.cache().stats();
        assert!(stats.evictions > 0 && stats.spill_hits > 0);
        assert_eq!(stats.misses, 1, "spill tier absorbs every re-request");

        let row = LifecycleRow {
            qubits: n,
            compile_secs,
            wire_bytes,
            rehydrate_secs,
            capped_sweep_points_per_sec: bindings as f64 / sweep_secs,
            evictions: stats.evictions,
            spill_hits: stats.spill_hits,
        };
        table.row(vec![
            n.to_string(),
            fmt_secs(row.compile_secs),
            row.wire_bytes.to_string(),
            fmt_secs(row.rehydrate_secs),
            format!("{:.0}x", row.compile_secs / row.rehydrate_secs),
            format!("{:.0}", row.capped_sweep_points_per_sec),
            row.evictions.to_string(),
            row.spill_hits.to_string(),
        ]);
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&spill_dir);
    table.print();
    println!(
        "\nrehydx = structural-compile time over spill-file rehydration \
         time (read + decode + deterministic re-derivation of the \
         circuit-dependent state), bit-identity asserted while measuring; \
         spillsw/s is the engine sweep rate when the byte budget is below \
         the artifact size, so every point's query rehydrates from disk — \
         the floor a bounded cache cannot fall under."
    );
    // The acceptance bar: on the largest default QAOA size, a spill hit
    // must beat a recompile by at least 5x (in practice it is far more).
    let largest = rows.last().expect("sizes non-empty");
    assert!(
        largest.compile_secs / largest.rehydrate_secs >= 5.0,
        "rehydration ({}) must be ≥5x faster than recompilation ({}) at {} qubits",
        fmt_secs(largest.rehydrate_secs),
        fmt_secs(largest.compile_secs),
        largest.qubits
    );
    rows
}

/// One measured gradient row.
struct GradRow {
    qubits: usize,
    params: usize,
    analytic_grads_per_sec: f64,
    ps_grads_per_sec: f64,
    fd_grads_per_sec: f64,
}

/// Multi-angle QAOA (one symbol per edge and per vertex): the gradient
/// workload. Unique symbols keep the parameter-shift and finite-difference
/// references at the same evaluation count (`2p + 1`), while the analytic
/// path answers the whole gradient in one tape evaluation.
fn ma_qaoa(n: usize) -> (Circuit, ParamMap) {
    let graph = Graph::random_regular(n, 3, 3);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    let mut params = ParamMap::new();
    // Standard depth-2 multi-angle QAOA: every edge and every node gets
    // its own angle in every layer (5n unique symbols on a 3-regular
    // graph), the regime one-pass analytic gradients are built for.
    for layer in 0..2 {
        for (e, &(a, b)) in graph.edges().iter().enumerate() {
            c.zz(a, b, Param::symbol(format!("g{layer}_{e}")));
            params.bind(
                format!("g{layer}_{e}"),
                0.45 + 0.01 * e as f64 + 0.07 * layer as f64,
            );
        }
        for q in 0..n {
            c.rx(q, Param::symbol(format!("b{layer}_{q}")));
            params.bind(
                format!("b{layer}_{q}"),
                0.25 + 0.01 * q as f64 + 0.05 * layer as f64,
            );
        }
    }
    (c, params)
}

fn gradient_section(scale: &Scale) -> Vec<GradRow> {
    let sizes: Vec<usize> = scale.pick(vec![6, 8, 10], vec![8, 12, 16]);
    let repeats = scale.pick(3, 1);
    let mut table = ResultTable::new(
        "Gradient throughput (multi-angle QAOA, analytic vs parameter-shift vs scalar FD)"
            .to_string(),
        &[
            "qubits", "params", "angrad/s", "psgrad/s", "fdgrad/s", "anx",
        ],
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        let (circuit, params) = ma_qaoa(n);
        let obs = move |bits: usize| bits.count_ones() as f64;
        let engine = Engine::new();
        let symbols: Vec<String> = circuit.symbols().into_iter().collect();
        let p = symbols.len();
        // Warm the cache so every path measures the bind-and-evaluate
        // economics, not compilation.
        let warm = engine
            .gradient(&circuit, &params, &obs, None)
            .expect("gradient");
        assert_eq!(
            warm.evaluations, 1,
            "the analytic path answers all {p} parameters in one evaluation"
        );
        assert!(warm.exact, "KC analytic gradients are exact");
        // The parameter-shift cross-check path, pinned via the backend's
        // force-shift hook (its own cache, warmed separately).
        let shift_backend = KcBackend::new(
            std::sync::Arc::new(ArtifactCache::new()),
            KcOptions::default(),
        )
        .with_force_shift(true);
        let shift_warm = shift_backend
            .expectation_gradient(&circuit, &params, &obs, &symbols)
            .expect("shift gradient");
        assert_eq!(
            shift_warm.evaluations,
            2 * p + 1,
            "unique symbols: 2p+1 lanes"
        );
        // Interleaved best-of-N, like the sweep section: host noise cannot
        // skew one side of the ratio.
        let mut an_secs = f64::INFINITY;
        let mut ps_secs = f64::INFINITY;
        let mut fd_secs = f64::INFINITY;
        for _ in 0..repeats {
            let (an, t) = time(|| {
                engine
                    .gradient(&circuit, &params, &obs, None)
                    .expect("gradient")
            });
            an_secs = an_secs.min(t);
            let (ps, t) = time(|| {
                shift_backend
                    .expectation_gradient(&circuit, &params, &obs, &symbols)
                    .expect("shift gradient")
            });
            ps_secs = ps_secs.min(t);
            // Cross-check the two exact methods against each other.
            assert!((an.value - ps.value).abs() < 1e-9, "value diverged");
            for (i, (g_an, g_ps)) in an.gradient.iter().zip(&ps.gradient).enumerate() {
                assert!(
                    (g_an - g_ps).abs() < 1e-9,
                    "gradient[{i}] diverged: analytic {g_an} vs shift {g_ps}"
                );
            }
            let (fd, t) = time(|| {
                // The scalar path: one facade expectation per shifted
                // binding, central differences with the engine's FD step.
                let h = qkc_engine::FD_STEP;
                let value = engine
                    .expectation(&circuit, &params, &obs, 0, 1)
                    .expect("expectation");
                let grad: Vec<f64> = symbols
                    .iter()
                    .map(|s| {
                        let base = params.get(s).expect("bound");
                        let mut plus = params.clone();
                        plus.bind(s, base + h);
                        let mut minus = params.clone();
                        minus.bind(s, base - h);
                        let ep = engine
                            .expectation(&circuit, &plus, &obs, 0, 1)
                            .expect("expectation");
                        let em = engine
                            .expectation(&circuit, &minus, &obs, 0, 1)
                            .expect("expectation");
                        (ep - em) / (2.0 * h)
                    })
                    .collect();
                (value, grad)
            });
            fd_secs = fd_secs.min(t);
            // Cross-check during measurement: both exact methods must
            // agree with the finite-difference reference.
            assert!((fd.0 - ps.value).abs() < 1e-9, "value diverged");
            for (i, (g_fd, g_ps)) in fd.1.iter().zip(&ps.gradient).enumerate() {
                assert!(
                    (g_fd - g_ps).abs() < 1e-4,
                    "gradient[{i}] diverged: fd {g_fd} vs ps {g_ps}"
                );
            }
        }
        let row = GradRow {
            qubits: n,
            params: p,
            analytic_grads_per_sec: 1.0 / an_secs,
            ps_grads_per_sec: 1.0 / ps_secs,
            fd_grads_per_sec: 1.0 / fd_secs,
        };
        table.row(vec![
            n.to_string(),
            p.to_string(),
            format!("{:.1}", row.analytic_grads_per_sec),
            format!("{:.1}", row.ps_grads_per_sec),
            format!("{:.1}", row.fd_grads_per_sec),
            format!("{:.2}x", row.analytic_grads_per_sec / row.ps_grads_per_sec),
        ]);
        rows.push(row);
    }
    table.print();
    println!(
        "\nangrad/s = full exact gradients per second through the one-pass \
         analytic path (one tangent-carrying bind + one differentials \
         pass of the cached artifact for every parameter at once); \
         psgrad/s = the same gradient by the parameter-shift rule (2p+1 \
         shifted bindings as lanes of one batched bind); fdgrad/s = 2p+1 \
         scalar engine expectation calls. anx is the analytic win over \
         the shift rule — it grows with parameter count because the \
         analytic evaluation count does not."
    );
    // The acceptance bar: at ≥ 8 parameters the one-pass analytic
    // gradient must beat the parameter-shift rule by at least 3x.
    for r in &rows {
        if r.params >= 8 {
            assert!(
                r.analytic_grads_per_sec >= 3.0 * r.ps_grads_per_sec,
                "analytic gradient at {} qubits / {} params ran at {:.2}x \
                 the parameter-shift rate (contract: >= 3x)",
                r.qubits,
                r.params,
                r.analytic_grads_per_sec / r.ps_grads_per_sec
            );
        }
    }
    rows
}

/// Appends this run's datapoint to the JSON-lines trajectory file: one
/// self-contained JSON object per run, newest last.
fn write_json(
    rows: &[Row],
    grad_rows: &[GradRow],
    lifecycle_rows: &[LifecycleRow],
    telemetry_rows: &[TelemetryRow],
    k: usize,
) -> std::io::Result<()> {
    let path = std::env::var("QKC_BENCH_JSON").unwrap_or_else(|_| "BENCH_sweep.json".to_string());
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut row_json: Vec<String> = Vec::new();
    for r in rows {
        row_json.push(format!(
            "{{\"qubits\":{},\"threads\":{},\"compile_secs\":{:.6},\
             \"scalar_binds_per_sec\":{:.1},\"batched_binds_per_sec\":{:.1},\
             \"scalar_evals_per_sec\":{:.1},\"batched_evals_per_sec\":{:.1},\
             \"batch_speedup\":{:.3},\"sweep_points_per_sec\":{:.1},\
             \"cache_speedup\":{:.1}}}",
            r.qubits,
            r.threads,
            r.compile_secs,
            r.scalar_binds_per_sec,
            r.batched_binds_per_sec,
            r.scalar_evals_per_sec,
            r.batched_evals_per_sec,
            r.batched_evals_per_sec / r.scalar_evals_per_sec,
            r.sweep_points_per_sec,
            r.cache_speedup,
        ));
    }
    let mut grad_json: Vec<String> = Vec::new();
    for g in grad_rows {
        grad_json.push(format!(
            "{{\"qubits\":{},\"params\":{},\"analytic_per_s\":{:.2},\
             \"ps_grads_per_sec\":{:.2},\"fd_grads_per_sec\":{:.2},\
             \"analytic_speedup\":{:.3},\"grad_speedup\":{:.3}}}",
            g.qubits,
            g.params,
            g.analytic_grads_per_sec,
            g.ps_grads_per_sec,
            g.fd_grads_per_sec,
            g.analytic_grads_per_sec / g.ps_grads_per_sec,
            g.ps_grads_per_sec / g.fd_grads_per_sec,
        ));
    }
    let mut lifecycle_json: Vec<String> = Vec::new();
    for l in lifecycle_rows {
        lifecycle_json.push(format!(
            "{{\"qubits\":{},\"compile_secs\":{:.6},\"wire_bytes\":{},\
             \"rehydrate_secs\":{:.6},\"rehydrate_speedup\":{:.1},\
             \"capped_sweep_points_per_sec\":{:.1},\"evictions\":{},\
             \"spill_hits\":{}}}",
            l.qubits,
            l.compile_secs,
            l.wire_bytes,
            l.rehydrate_secs,
            l.compile_secs / l.rehydrate_secs,
            l.capped_sweep_points_per_sec,
            l.evictions,
            l.spill_hits,
        ));
    }
    let mut telemetry_json: Vec<String> = Vec::new();
    for t in telemetry_rows {
        telemetry_json.push(format!(
            "{{\"qubits\":{},\"baseline_points_per_sec\":{:.1},\
             \"disabled_points_per_sec\":{:.1},\
             \"enabled_points_per_sec\":{:.1},\
             \"disabled_over_baseline\":{:.4},\
             \"enabled_over_baseline\":{:.4}}}",
            t.qubits,
            t.baseline_points_per_sec,
            t.disabled_points_per_sec,
            t.enabled_points_per_sec,
            t.disabled_points_per_sec / t.baseline_points_per_sec,
            t.enabled_points_per_sec / t.baseline_points_per_sec,
        ));
    }
    let datapoint = format!(
        "{{\"bench\":\"sweep_throughput\",\"unix_time\":{unix_time},\
         \"batch_width\":{k},\"rows\":[{}],\"gradient_rows\":[{}],\
         \"artifact_rows\":[{}],\"telemetry_rows\":[{}]}}\n",
        row_json.join(","),
        grad_json.join(","),
        lifecycle_json.join(","),
        telemetry_json.join(",")
    );
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    file.write_all(datapoint.as_bytes())?;
    println!("\nappended datapoint to {path}");
    Ok(())
}
