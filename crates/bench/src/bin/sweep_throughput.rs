//! Engine sweep throughput: bindings/sec and cache-hit speedup on a
//! parameterized QAOA sweep — the perf baseline for the engine's
//! compile-once-bind-many contract.
//!
//! Three quantities per size:
//! * `bind/s` — raw parameter re-binds against the cached artifact (the
//!   step a variational iteration pays before its queries);
//! * `sweep/s` — full engine sweep points per second (bind + exact
//!   expectation of the cut observable);
//! * `speedup` — cold (compile + first point) time over warm per-point
//!   time: the cache-hit advantage every iteration after the first enjoys.
//!
//! Run with: `cargo run --release --bin sweep_throughput`
//! (`QKC_SCALE=paper` for the larger sweep.)

use qkc_bench::{fmt_secs, time, ResultTable, Scale};
use qkc_circuit::ParamMap;
use qkc_engine::{Engine, EngineOptions, SweepSpec};
use qkc_workloads::{Graph, QaoaMaxCut};

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = scale.pick(vec![6, 8, 10], vec![8, 12, 16]);
    let bindings = scale.pick(64, 256);

    let mut table = ResultTable::new(
        "Engine sweep throughput (QAOA p=1, 3-regular)",
        &[
            "qubits", "compile", "bind/s", "sweep", "sweep/s", "speedup", "threads",
        ],
    );

    for n in &sizes {
        let n = *n;
        let qaoa = QaoaMaxCut::new(Graph::random_regular(n, 3, 3), 1);
        let circuit = qaoa.circuit();
        let obs = qaoa.cut_observable();
        let params: Vec<ParamMap> = (0..bindings)
            .map(|i| {
                let g = 0.3 + 0.001 * i as f64;
                let b = 0.25 + 0.0007 * i as f64;
                qaoa.params(&[g], &[b])
            })
            .collect();

        for threads in [1usize, 8] {
            let engine = Engine::with_options(EngineOptions::default().with_threads(threads));
            // Cold: the first expectation pays the structural compile.
            let (_, cold) = time(|| {
                engine
                    .expectation(&circuit, &params[0], &obs, 0, 1)
                    .expect("cold evaluation")
            });
            // Raw re-bind rate against the cached artifact.
            let artifact = engine
                .cache()
                .get_or_compile(&circuit, &engine.options().kc_options);
            let (_, bind_secs) = time(|| {
                for p in &params {
                    artifact.bind(p).expect("bind");
                }
            });
            // Warm sweep: every point re-binds and takes an expectation.
            let (points, sweep_secs) = time(|| {
                engine
                    .sweep(
                        &circuit,
                        &params,
                        &SweepSpec::expectation(&obs).with_seed(1),
                    )
                    .expect("sweep")
            });
            assert_eq!(points.len(), bindings);
            assert_eq!(engine.cache().misses(), 1, "sweep must not recompile");
            let per_point = sweep_secs / bindings as f64;
            table.row(vec![
                n.to_string(),
                fmt_secs(cold),
                format!("{:.0}", bindings as f64 / bind_secs),
                fmt_secs(sweep_secs),
                format!("{:.0}", bindings as f64 / sweep_secs),
                format!("{:.0}x", cold / per_point),
                threads.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nspeedup = cold (compile + first query) time over warm per-point \
         time; bind/s is the raw parameter-rebinding rate the variational \
         loop pays per iteration."
    );
}
