//! Figure 6 + Table 4: compiled-representation size (AC nodes) vs circuit
//! size (CNF variables) for three workload families — random circuit
//! sampling (unstructured), Grover's search, and Shor's period finding.
//!
//! Expected shape (paper §3.2.3): RCS scales exponentially (nothing for
//! knowledge compilation to exploit) while the structured Grover/Shor
//! families scale sub-exponentially; the final table reports the paper's
//! Table 4 size metrics for the largest instance of each family.

use qkc_bench::{fmt_bytes, time, ResultTable, Scale};
use qkc_circuit::Circuit;
use qkc_core::{KcOptions, KcSimulator};
use qkc_workloads::{algorithms, RandomCircuit, ShorPeriodFinding};

struct Instance {
    family: &'static str,
    label: String,
    circuit: Circuit,
}

fn compile_row(inst: &Instance) -> (usize, usize, usize, usize, usize, f64) {
    let (sim, secs) = time(|| KcSimulator::compile(&inst.circuit, &KcOptions::default()));
    let m = sim.metrics();
    (
        inst.circuit.num_qubits(),
        inst.circuit.num_gates(),
        m.cnf_vars,
        m.ac_nodes,
        m.ac_size_bytes,
        secs,
    )
}

fn main() {
    let scale = Scale::from_env();
    let mut instances: Vec<Instance> = Vec::new();

    // Random circuit sampling: grid sizes and depths.
    let rcs_sizes: Vec<(usize, usize, usize)> = scale.pick(
        vec![(2, 2, 4), (2, 3, 4), (3, 3, 4), (3, 3, 6)],
        vec![
            (3, 3, 6),
            (4, 4, 6),
            (4, 5, 8),
            (5, 5, 8),
            (5, 6, 8),
            (6, 7, 8),
        ],
    );
    for (w, h, cycles) in rcs_sizes {
        instances.push(Instance {
            family: "RCS",
            label: format!("{w}x{h}x{cycles}"),
            circuit: RandomCircuit::new(w, h, cycles, 17).circuit(),
        });
    }

    // Grover: search spaces from 2 to 16 elements (1 to 4 qubits), one
    // marked element, the paper's square-root oracle family.
    let grover_ns: Vec<usize> = scale.pick(vec![1, 2, 3, 4], vec![1, 2, 3, 4]);
    for n in grover_ns {
        let target = if n >= 2 { 4 % (1 << n) } else { 1 };
        let circuit = if n >= 2 {
            algorithms::grover_sqrt_circuit(n, target)
        } else {
            algorithms::grover_circuit(1, &[1])
        };
        instances.push(Instance {
            family: "Grover",
            label: format!("{} elements", 1 << n),
            circuit,
        });
    }

    // Shor: period finding for 15 with increasing counting precision.
    let shor_ts: Vec<usize> = scale.pick(vec![2, 3, 4], vec![2, 4, 6, 8]);
    for t in shor_ts {
        let shor = ShorPeriodFinding::new(15, 7, t);
        instances.push(Instance {
            family: "Shor",
            label: format!("N=15 a=7 t={t}"),
            circuit: shor.circuit(),
        });
    }

    let mut fig6 = ResultTable::new(
        "Figure 6: AC nodes vs CNF variables per workload family",
        &[
            "family", "instance", "qubits", "gates", "cnf_vars", "ac_nodes", "compile",
        ],
    );
    // Track the largest instance per family for Table 4.
    let mut largest: std::collections::HashMap<&'static str, (String, usize, usize, usize)> =
        std::collections::HashMap::new();
    for inst in &instances {
        let (qubits, gates, cnf_vars, ac_nodes, ac_bytes, secs) = compile_row(inst);
        fig6.row(vec![
            inst.family.to_string(),
            inst.label.clone(),
            qubits.to_string(),
            gates.to_string(),
            cnf_vars.to_string(),
            ac_nodes.to_string(),
            qkc_bench::fmt_secs(secs),
        ]);
        let entry = largest
            .entry(inst.family)
            .or_insert_with(|| (inst.label.clone(), qubits, gates, ac_bytes));
        if qubits * 1000 + gates >= entry.1 * 1000 + entry.2 {
            *entry = (inst.label.clone(), qubits, gates, ac_bytes);
        }
    }
    fig6.print();

    let mut table4 = ResultTable::new(
        "Table 4: largest instance per family",
        &["family", "instance", "#qubits", "#gates", "AC file size"],
    );
    for family in ["RCS", "Grover", "Shor"] {
        if let Some((label, qubits, gates, bytes)) = largest.get(family) {
            table4.row(vec![
                family.to_string(),
                label.clone(),
                qubits.to_string(),
                gates.to_string(),
                fmt_bytes(*bytes),
            ]);
        }
    }
    table4.print();
    println!("\nShape check: on a semi-log plot of ac_nodes vs cnf_vars, RCS");
    println!("grows exponentially while Grover and Shor stay sub-exponential —");
    println!("knowledge compilation extracts the structure of structured workloads.");
}
