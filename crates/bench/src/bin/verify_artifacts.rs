//! The CI certification driver: compiles the example workloads and runs
//! the certifying static verifier over every artifact.
//!
//! Each workload is compiled through an [`Engine`] (so artifacts resolve
//! exactly as production queries would) and verified at
//! [`VerifyLevel::Full`]: tape well-formedness, semantic d-DNNF
//! certification (decomposability, determinism witnesses, smoothness),
//! slot liveness, and the model-layer lints under the workload's
//! parameter binding. The rendered [`VerifyReport`]s are written to
//! `VERIFY_report.txt` (override with `QKC_VERIFY_REPORT`) for CI to
//! archive.
//!
//! Exit code is non-zero if any artifact carries an error-severity
//! finding — the trust anchor the differential-fuzzing and
//! approximate-backend roadmap items stand on.

use qkc_circuit::{Circuit, ParamMap};
use qkc_engine::{Engine, Severity};
use qkc_workloads::algorithms::{
    bell_circuit, grover_circuit, noisy_bell_circuit, qft_circuit, teleportation_circuit,
};
use qkc_workloads::{QaoaMaxCut, RandomCircuit, VqeIsing};
use std::fmt::Write as _;
use std::path::PathBuf;

fn workloads() -> Vec<(String, Circuit, ParamMap)> {
    let vqe = VqeIsing::new(2, 2, 1);
    let qaoa = QaoaMaxCut::new(qkc_workloads::Graph::cycle(4), 1);
    vec![
        ("bell".to_string(), bell_circuit(), ParamMap::new()),
        (
            "noisy_bell(gamma=0.2)".to_string(),
            noisy_bell_circuit(0.2),
            ParamMap::new(),
        ),
        ("qft(4)".to_string(), qft_circuit(4), ParamMap::new()),
        (
            "grover(3, marked=5)".to_string(),
            grover_circuit(3, &[5]),
            ParamMap::new(),
        ),
        (
            "teleportation(theta=0.77)".to_string(),
            teleportation_circuit(0.77),
            ParamMap::new(),
        ),
        (
            "vqe_ising(2x2, 1 layer)".to_string(),
            vqe.circuit(),
            vqe.default_params(),
        ),
        (
            "qaoa_maxcut(C4, p=1)".to_string(),
            qaoa.circuit(),
            qaoa.default_params(),
        ),
        (
            "rcs(2x2, 4 cycles)".to_string(),
            RandomCircuit::new(2, 2, 4, 11).circuit(),
            ParamMap::new(),
        ),
    ]
}

fn main() {
    let engine = Engine::new();
    let mut rendered = String::new();
    let mut errors = 0usize;
    for (name, circuit, params) in workloads() {
        let report = engine
            .verify(&circuit, &params)
            .unwrap_or_else(|e| panic!("verify({name}) failed to resolve an artifact: {e}"));
        let bad = report
            .findings()
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        errors += bad;
        let _ = writeln!(rendered, "== {name} ==");
        let _ = write!(rendered, "{}", report.render());
        let _ = writeln!(rendered);
        println!(
            "{name}: {} finding(s), {bad} error(s) -> {}",
            report.findings().len(),
            if bad == 0 { "clean" } else { "FAILED" }
        );
    }
    let path = std::env::var_os("QKC_VERIFY_REPORT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("VERIFY_report.txt"));
    std::fs::write(&path, &rendered).expect("write verify report");
    println!("report written to {}", path.display());
    if errors > 0 {
        eprintln!("{errors} error-severity finding(s) across workload artifacts");
        std::process::exit(1);
    }
}
