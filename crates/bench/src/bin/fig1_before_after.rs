//! Figure 1: the effect of the compilation optimizations on arithmetic
//! circuit size for a 4-qubit noisy QAOA circuit — "direct compilation"
//! (before) vs the optimized pipeline (after), plus an ablation over each
//! individual optimization (§3.2.1–3.2.2 optimization lists).

use qkc_bench::{fmt_bytes, fmt_secs, time, ResultTable};
use qkc_circuit::NoiseChannel;
use qkc_core::{KcOptions, KcSimulator};
use qkc_knowledge::VarOrder;
use qkc_workloads::{Graph, QaoaMaxCut};

fn main() {
    let qaoa = QaoaMaxCut::new(Graph::cycle(4), 1);
    let noisy = qaoa
        .circuit()
        .with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
    println!(
        "4-qubit noisy QAOA: {} gates, {} noise events",
        noisy.num_gates(),
        noisy.num_noise_ops()
    );

    let configs: Vec<(&str, KcOptions)> = vec![
        // "Before" keeps component caching on: Figure 1 is about compiled
        // *size*, and uncached exhaustive search on this CNF does not
        // terminate in reasonable time (that, too, is the point of the
        // optimization list).
        (
            "before (direct compilation)",
            KcOptions {
                order: VarOrder::Lexicographic,
                cache: true,
                simplify_cnf: false,
                elide_internal: false,
                ..Default::default()
            },
        ),
        (
            "+ unit resolution",
            KcOptions {
                order: VarOrder::Lexicographic,
                cache: true,
                simplify_cnf: true,
                elide_internal: false,
                ..Default::default()
            },
        ),
        (
            "+ state elision",
            KcOptions {
                order: VarOrder::Lexicographic,
                cache: true,
                simplify_cnf: true,
                elide_internal: true,
                ..Default::default()
            },
        ),
        (
            "after (+ min-cut order)",
            KcOptions {
                order: VarOrder::MinCutSeparator,
                cache: true,
                simplify_cnf: true,
                elide_internal: true,
                ..Default::default()
            },
        ),
        (
            "ablation: no component cache",
            KcOptions {
                order: VarOrder::MinCutSeparator,
                cache: false,
                simplify_cnf: true,
                elide_internal: true,
                ..Default::default()
            },
        ),
    ];

    let mut table = ResultTable::new(
        "Figure 1: AC size before/after compilation optimizations",
        &[
            "configuration",
            "cnf_clauses",
            "ac_nodes",
            "ac_edges",
            "ac_size",
            "compile",
        ],
    );
    let mut first_nodes = None;
    let mut last_nodes = 0usize;
    for (name, options) in &configs {
        let (sim, secs) = time(|| KcSimulator::compile(&noisy, options));
        let m = sim.metrics();
        if first_nodes.is_none() {
            first_nodes = Some(m.ac_nodes);
        }
        if name.starts_with("after") {
            last_nodes = m.ac_nodes;
        }
        table.row(vec![
            name.to_string(),
            m.cnf_clauses_simplified.to_string(),
            m.ac_nodes.to_string(),
            m.ac_edges.to_string(),
            fmt_bytes(m.ac_size_bytes),
            fmt_secs(secs),
        ]);
    }
    table.print();
    let reduction = first_nodes.unwrap_or(1) as f64 / last_nodes.max(1) as f64;
    println!(
        "\nShape check: the optimized pipeline shrinks the AC by {reduction:.1}× \
         versus direct compilation (paper Figure 1: 'reduced but equivalent')."
    );
}
