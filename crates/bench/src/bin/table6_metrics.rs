//! Table 6: intermediate compilation-result metrics — gates (BN nodes), CNF
//! clauses, AC nodes/edges, and AC size — for the largest QAOA and VQE
//! problem instances of the Figure 8 (ideal) and Figure 9 (noisy) sweeps.

use qkc_bench::{fmt_bytes, ResultTable, Scale};
use qkc_circuit::{Circuit, NoiseChannel};
use qkc_core::{KcOptions, KcSimulator};
use qkc_workloads::{Graph, QaoaMaxCut, VqeIsing};

fn row(table: &mut ResultTable, label: &str, circuit: &Circuit) {
    let sim = KcSimulator::compile(circuit, &KcOptions::default());
    let m = sim.metrics();
    table.row(vec![
        label.to_string(),
        circuit.num_qubits().to_string(),
        format!("{} ({})", circuit.num_gates(), m.bn_nodes),
        m.cnf_clauses.to_string(),
        m.ac_nodes.to_string(),
        m.ac_edges.to_string(),
        fmt_bytes(m.ac_size_bytes),
    ]);
}

fn main() {
    let scale = Scale::from_env();
    let noise = NoiseChannel::depolarizing(0.005);
    let ideal_qaoa_n = scale.pick(12, 32);
    let ideal_vqe = scale.pick((3, 3), (5, 5));
    let noisy_qaoa_n = scale.pick(6, 12);
    let noisy_vqe = scale.pick((2, 2), (3, 3));

    let mut table = ResultTable::new(
        "Table 6: intermediate compilation metrics for the largest instances",
        &[
            "instance",
            "#qubits",
            "#gates (BN nodes)",
            "#CNF clauses",
            "#AC nodes",
            "#AC edges",
            "AC size",
        ],
    );

    for iters in [1usize, 2] {
        let qaoa = QaoaMaxCut::new(Graph::random_regular(ideal_qaoa_n, 3, 9), iters);
        row(
            &mut table,
            &format!("ideal QAOA {iters} iteration(s)"),
            &qaoa.circuit(),
        );
    }
    for iters in [1usize, 2] {
        let vqe = VqeIsing::new(ideal_vqe.0, ideal_vqe.1, iters);
        row(
            &mut table,
            &format!("ideal VQE {iters} iteration(s)"),
            &vqe.circuit(),
        );
    }
    for iters in [1usize, 2] {
        let qaoa = QaoaMaxCut::new(Graph::random_regular(noisy_qaoa_n, 3, 9), iters);
        row(
            &mut table,
            &format!("noisy QAOA {iters} iteration(s)"),
            &qaoa.circuit().with_noise_after_each_gate(&noise),
        );
    }
    for iters in [1usize, 2] {
        let vqe = VqeIsing::new(noisy_vqe.0, noisy_vqe.1, iters);
        row(
            &mut table,
            &format!("noisy VQE {iters} iteration(s)"),
            &vqe.circuit().with_noise_after_each_gate(&noise),
        );
    }
    table.print();
    println!("\nShape check (paper Table 6): two iterations inflate the AC far");
    println!("more than the CNF (depth hurts compilation superlinearly), and");
    println!("noise multiplies clause counts but stays tractable at low width.");
}
