//! Table 6: intermediate compilation-result metrics — gates (BN nodes), CNF
//! clauses, AC nodes/edges, AC size, and now the measured per-phase times —
//! for the largest QAOA and VQE problem instances of the Figure 8 (ideal)
//! and Figure 9 (noisy) sweeps.
//!
//! Formatting comes from [`PipelineMetrics::report`] — the same pretty-
//! printer every live run can use — instead of a bench-local table.

use qkc_bench::Scale;
use qkc_circuit::{Circuit, NoiseChannel};
use qkc_core::{KcOptions, KcSimulator};
use qkc_workloads::{Graph, QaoaMaxCut, VqeIsing};

fn report(label: &str, circuit: &Circuit) {
    let sim = KcSimulator::compile(circuit, &KcOptions::default());
    println!(
        "{label} — {} qubits, {} gates",
        circuit.num_qubits(),
        circuit.num_gates()
    );
    print!("{}", sim.metrics().report());
    println!();
}

fn main() {
    let scale = Scale::from_env();
    let noise = NoiseChannel::depolarizing(0.005);
    let ideal_qaoa_n = scale.pick(12, 32);
    let ideal_vqe = scale.pick((3, 3), (5, 5));
    let noisy_qaoa_n = scale.pick(6, 12);
    let noisy_vqe = scale.pick((2, 2), (3, 3));

    println!("Table 6: intermediate compilation metrics for the largest instances\n");

    for iters in [1usize, 2] {
        let qaoa = QaoaMaxCut::new(Graph::random_regular(ideal_qaoa_n, 3, 9), iters);
        report(&format!("ideal QAOA {iters} iteration(s)"), &qaoa.circuit());
    }
    for iters in [1usize, 2] {
        let vqe = VqeIsing::new(ideal_vqe.0, ideal_vqe.1, iters);
        report(&format!("ideal VQE {iters} iteration(s)"), &vqe.circuit());
    }
    for iters in [1usize, 2] {
        let qaoa = QaoaMaxCut::new(Graph::random_regular(noisy_qaoa_n, 3, 9), iters);
        report(
            &format!("noisy QAOA {iters} iteration(s)"),
            &qaoa.circuit().with_noise_after_each_gate(&noise),
        );
    }
    for iters in [1usize, 2] {
        let vqe = VqeIsing::new(noisy_vqe.0, noisy_vqe.1, iters);
        report(
            &format!("noisy VQE {iters} iteration(s)"),
            &vqe.circuit().with_noise_after_each_gate(&noise),
        );
    }
    println!("Shape check (paper Table 6): two iterations inflate the AC far");
    println!("more than the CNF (depth hurts compilation superlinearly), and");
    println!("noise multiplies clause counts but stays tractable at low width.");
}
