//! Tables 2, 3, and 5 (the paper's running example): the noisy Bell-state
//! circuit of Figure 2 — its conditional amplitude tables, its CNF encoding,
//! the upward-pass amplitudes of Table 5, and the Equation-3 density matrix.

use qkc_bayesnet::{BayesNet, CatEntry};
use qkc_bench::ResultTable;
use qkc_circuit::{Circuit, ParamMap};
use qkc_cnf::encode;
use qkc_core::KcSimulator;
use qkc_math::FRAC_1_SQRT_2;

fn main() {
    let mut circuit = Circuit::new(2);
    circuit.h(0).phase_damp(0, 0.36).cnot(0, 1);
    println!("{circuit}");

    // Table 2: conditional amplitude tables.
    let bn = BayesNet::from_circuit(&circuit);
    let weights = bn.evaluate_weights(&ParamMap::new()).expect("no symbols");
    println!("== Table 2: conditional amplitude tables ==");
    for (id, node) in bn.nodes().iter().enumerate() {
        println!(
            "\nnode {} ({} rows x {} values), parents {:?}:",
            node.label,
            node.num_rows(),
            node.domain,
            node.parents
                .iter()
                .map(|&p| bn.node(p).label.clone())
                .collect::<Vec<_>>()
        );
        for row in 0..node.num_rows() {
            let cells: Vec<String> = (0..node.domain)
                .map(|v| match node.entry(row, v) {
                    CatEntry::Zero => "0".to_string(),
                    CatEntry::One => "1".to_string(),
                    CatEntry::Weight(w) => format!("{}", weights.value(id, w)),
                })
                .collect();
            println!("  row {row}: [{}]", cells.join(", "));
        }
    }

    // Table 3: the CNF encoding.
    let enc = encode(&bn);
    println!(
        "\n== Table 3: CNF encoding ({} vars, {} clauses) ==",
        enc.cnf.num_vars(),
        enc.cnf.num_clauses()
    );
    print!("{}", enc.cnf.to_dimacs());

    // Table 5: upward-pass amplitudes and density-matrix components.
    let sim = KcSimulator::compile(&circuit, &Default::default());
    let bound = sim.bind(&ParamMap::new()).expect("bind");
    let mut t5 = ResultTable::new(
        "Table 5: upward pass for finding amplitudes",
        &["q0m2rv", "q0m1", "q1m3", "amplitude", "|amp|", "paper"],
    );
    let s = FRAC_1_SQRT_2;
    let expected = [
        (0, 0, 0, s),
        (0, 0, 1, 0.0),
        (0, 1, 0, 0.0),
        (0, 1, 1, 0.8 * s),
        (1, 0, 0, 0.0),
        (1, 0, 1, 0.0),
        (1, 1, 0, 0.0),
        (1, 1, 1, 0.6 * s),
    ];
    for (rv, q0, q1, paper) in expected {
        let amp = bound.amplitude((q0 << 1) | q1, &[rv]);
        t5.row(vec![
            rv.to_string(),
            format!("|{q0}>"),
            format!("|{q1}>"),
            format!("{amp}"),
            format!("{:.6}", amp.norm()),
            format!("{paper:.6}"),
        ]);
        assert!(
            (amp.norm() - paper.abs()).abs() < 1e-12,
            "Table 5 mismatch at ({rv},{q0},{q1})"
        );
    }
    t5.print();
    println!("\n(note: the paper's -0.6/√2 entry uses the controlled-Ry noise");
    println!("decomposition; we encode Kraus operators directly, which differs");
    println!("by an unobservable per-branch phase — magnitudes agree exactly)");

    // Equation 3: the final density matrix.
    let rho = bound.density_matrix();
    println!("\n== Equation 3: final density matrix ==");
    for r in 0..4 {
        print!("  ");
        for c in 0..4 {
            print!("{:+.4} ", rho[(r, c)].re);
        }
        println!();
    }
    assert!((rho[(0, 3)].re - 0.4).abs() < 1e-12);
    println!("\nmatches  [1/2 0 0 0.8/2; 0 0 0 0; 0 0 0 0; 0.8/2 0 0 1/2]  ✓");
}
