//! Shared harness utilities for the benchmark binaries that regenerate
//! every table and figure of the paper's evaluation (see DESIGN.md §4 for
//! the experiment index).
//!
//! Each binary prints both a human-readable table and machine-readable CSV
//! rows. Problem sizes default to laptop scale, like the paper's artifact
//! appendix; set `QKC_SCALE=paper` (or pass explicit sizes) for the full
//! sweeps.

#![forbid(unsafe_code)]

use std::time::Instant;

/// How large the benchmark sweeps should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Artifact-appendix scale: minutes on a laptop.
    Quick,
    /// Paper scale: may need many cores / much memory.
    Paper,
}

impl Scale {
    /// Reads the scale from `QKC_SCALE` (`paper` or anything else = quick).
    pub fn from_env() -> Self {
        match std::env::var("QKC_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Picks `quick` or `paper` depending on the scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats byte counts compactly.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b} B")
    } else if b < 1024 * 1024 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{:.1} MB", b as f64 / (1024.0 * 1024.0))
    }
}

/// A simple aligned-column table writer that doubles as a CSV emitter.
#[derive(Debug)]
pub struct ResultTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with the given title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the aligned table followed by CSV lines.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>w$}  "));
            }
            out
        };
        println!("{}", line(&self.header));
        for row in &self.rows {
            println!("{}", line(row));
        }
        println!("\ncsv,{}", self.header.join(","));
        for row in &self.rows {
            println!("csv,{}", row.join(","));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert!(fmt_bytes(2048).contains("KB"));
        assert!(fmt_secs(0.5).contains("ms"));
        assert!(fmt_secs(2.0).contains('s'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_checks_arity() {
        let mut t = ResultTable::new("t", &["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
