//! Criterion micro-benchmarks for the computational kernels behind the
//! paper's figures: state-vector gate application, pipeline compilation,
//! arithmetic-circuit evaluation (upward/downward), parameter re-binding,
//! Gibbs steps, and tensor-network contraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qkc_circuit::ParamMap;
use qkc_core::{KcOptions, KcSimulator};
use qkc_knowledge::{evaluate, evaluate_with_differentials, GibbsOptions, VarOrder};
use qkc_statevector::StateVectorSimulator;
use qkc_tensornet::TensorNetwork;
use qkc_workloads::{Graph, QaoaMaxCut};

fn qaoa(n: usize) -> (QaoaMaxCut, ParamMap) {
    let q = QaoaMaxCut::new(Graph::random_regular(n, 3, 3), 1);
    let p = q.default_params();
    (q, p)
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_run");
    for n in [8usize, 12, 16] {
        let (q, p) = qaoa(n);
        let circuit = q.circuit();
        group.bench_with_input(BenchmarkId::new("1thread", n), &n, |b, _| {
            let sim = StateVectorSimulator::new();
            b.iter(|| sim.run_pure(&circuit, &p).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("8threads", n), &n, |b, _| {
            let sim = StateVectorSimulator::new().with_threads(8);
            b.iter(|| sim.run_pure(&circuit, &p).unwrap());
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kc_compile");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let (q, _) = qaoa(n);
        let circuit = q.circuit();
        for (name, order) in [
            ("lexicographic", VarOrder::Lexicographic),
            ("mincut", VarOrder::MinCutSeparator),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let options = KcOptions {
                    order,
                    ..Default::default()
                };
                b.iter(|| KcSimulator::compile(&circuit, &options));
            });
        }
    }
    group.finish();
}

fn bench_ac_evaluation(c: &mut Criterion) {
    let (q, p) = qaoa(10);
    let sim = KcSimulator::compile(&q.circuit(), &KcOptions::default());
    let bound = sim.bind(&p).unwrap();
    let mut group = c.benchmark_group("ac_queries");
    group.bench_function("amplitude_upward", |b| {
        b.iter(|| bound.amplitude(0b1010101010, &[]));
    });
    group.bench_function("rebind_params", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let params = q.params(&[0.001 * k as f64], &[0.3]);
            sim.bind(&params).unwrap()
        });
    });
    // Raw upward / upward+downward passes on the compiled circuit.
    let weights = qkc_knowledge::AcWeights::uniform(sim.encoding().cnf.num_vars());
    group.bench_function("upward_pass", |b| b.iter(|| evaluate(sim.nnf(), &weights)));
    group.bench_function("upward_downward_pass", |b| {
        b.iter(|| evaluate_with_differentials(sim.nnf(), &weights));
    });
    group.finish();
}

fn bench_gibbs(c: &mut Criterion) {
    let (q, p) = qaoa(10);
    let sim = KcSimulator::compile(&q.circuit(), &KcOptions::default());
    let bound = sim.bind(&p).unwrap();
    c.bench_function("gibbs_step", |b| {
        let mut sampler = bound.sampler(&GibbsOptions {
            warmup: 50,
            seed: 1,
            ..Default::default()
        });
        b.iter(|| sampler.sample_outputs(1, 1));
    });
}

fn bench_tensornet(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensornet_amplitude");
    group.sample_size(20);
    for n in [6usize, 8, 10] {
        let (q, p) = qaoa(n);
        let tn = TensorNetwork::from_circuit(&q.circuit(), &p).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| tn.amplitude(0));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_compile,
    bench_ac_evaluation,
    bench_gibbs,
    bench_tensornet
);
criterion_main!(benches);
