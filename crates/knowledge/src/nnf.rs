//! Hash-consed d-DNNF / arithmetic-circuit arena.
//!
//! The compiled representation is *deterministic decomposable negation
//! normal form*: AND nodes have variable-disjoint children, OR nodes have
//! logically disjoint children (they branch on a decision variable). Read as
//! an arithmetic circuit — AND = ×, OR = +, literals = weights — it computes
//! a weighted model count; over complex weights, a quantum amplitude
//! (paper §3.2.2, Figure 5).

use qkc_cnf::Lit;
use std::collections::HashMap;

/// Index of a node in an [`Nnf`] arena.
pub type NnfId = u32;

/// One node of the compiled circuit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NnfNode {
    /// The constant ⊤ (weight 1).
    True,
    /// The constant ⊥ (weight 0).
    False,
    /// A literal leaf; its weight is supplied at evaluation time.
    Lit(Lit),
    /// Conjunction (product) of variable-disjoint children.
    And(Box<[NnfId]>),
    /// Deterministic disjunction (sum) of two disjoint children.
    Or(NnfId, NnfId),
}

/// An immutable, compacted d-DNNF: nodes topologically ordered (children
/// precede parents), with a distinguished root.
#[derive(Debug, Clone)]
pub struct Nnf {
    nodes: Vec<NnfNode>,
    root: NnfId,
}

impl Nnf {
    /// Reassembles an arena from raw parts — the deserialization entry
    /// point for artifact wire formats. Validates the arena invariants the
    /// evaluators index by (children strictly precede parents, root in
    /// range, literals nonzero); deeper d-DNNF semantic properties
    /// (decomposability, determinism) are the producer's contract.
    ///
    /// # Errors
    ///
    /// A static description of the violated invariant.
    pub fn from_parts(nodes: Vec<NnfNode>, root: NnfId) -> Result<Self, &'static str> {
        if nodes.is_empty() {
            return Err("empty arena");
        }
        if root as usize >= nodes.len() {
            return Err("root out of range");
        }
        for (i, node) in nodes.iter().enumerate() {
            match node {
                NnfNode::True | NnfNode::False => {}
                NnfNode::Lit(l) => {
                    if *l == 0 || *l == i32::MIN {
                        return Err("invalid literal");
                    }
                }
                NnfNode::And(cs) => {
                    if cs.iter().any(|&c| c as usize >= i) {
                        return Err("child after parent");
                    }
                }
                NnfNode::Or(a, b) => {
                    if *a as usize >= i || *b as usize >= i {
                        return Err("child after parent");
                    }
                }
            }
        }
        Ok(Self { nodes, root })
    }

    /// The nodes, children-before-parents.
    pub fn nodes(&self) -> &[NnfNode] {
        &self.nodes
    }

    /// The root node id.
    pub fn root(&self) -> NnfId {
        self.root
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (total child references).
    pub fn num_edges(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                NnfNode::And(cs) => cs.len(),
                NnfNode::Or(..) => 2,
                _ => 0,
            })
            .sum()
    }

    /// Exact resident size of the enum arena in bytes: the node vector
    /// plus every AND node's boxed child slice. The old `8 × (nodes +
    /// edges)` estimate undercounted the enum layout badly (each node is
    /// `size_of::<NnfNode>()` ≈ 24 bytes before its children). Note the
    /// *execution* form — [`AcTape`](crate::AcTape) — is smaller still;
    /// its [`size_bytes`](crate::AcTape::size_bytes) is what the artifact
    /// cache accounts.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.len() * std::mem::size_of::<NnfNode>()
            + self
                .nodes
                .iter()
                .map(|n| match n {
                    NnfNode::And(cs) => cs.len() * std::mem::size_of::<NnfId>(),
                    _ => 0,
                })
                .sum::<usize>()
    }

    /// Serializes in the c2d `.nnf` text format (the format the paper's
    /// artifact stores compiled circuits in): a header `nnf v e n` followed
    /// by one line per node — `L lit`, `A k children…`, `O j 2 a b`.
    ///
    /// `⊤`/`⊥` are emitted as the empty conjunction `A 0` and empty
    /// disjunction `O 0 0` respectively.
    pub fn to_c2d_format(&self) -> String {
        let mut out = format!(
            "nnf {} {} {}\n",
            self.num_nodes(),
            self.num_edges(),
            self.mentioned_vars().last().copied().unwrap_or(0)
        );
        for node in &self.nodes {
            match node {
                NnfNode::True => out.push_str("A 0\n"),
                NnfNode::False => out.push_str("O 0 0\n"),
                NnfNode::Lit(l) => out.push_str(&format!("L {l}\n")),
                NnfNode::And(cs) => {
                    out.push_str(&format!("A {}", cs.len()));
                    for c in cs.iter() {
                        out.push_str(&format!(" {c}"));
                    }
                    out.push('\n');
                }
                NnfNode::Or(a, b) => out.push_str(&format!("O 0 2 {a} {b}\n")),
            }
        }
        out
    }

    /// The set of variables mentioned by literal leaves.
    pub fn mentioned_vars(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                NnfNode::Lit(l) => Some(l.unsigned_abs()),
                _ => None,
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// A mutable builder with hash-consing: structurally identical nodes are
/// created once and shared, which both bounds memory and implements the
/// paper's circuit-minimization effect (isomorphic sub-circuits merge).
#[derive(Debug, Default)]
pub struct NnfBuilder {
    nodes: Vec<NnfNode>,
    cache: HashMap<NnfNode, NnfId>,
}

impl NnfBuilder {
    /// Creates a builder with ⊤ and ⊥ preallocated.
    pub fn new() -> Self {
        let mut b = Self {
            nodes: Vec::new(),
            cache: HashMap::new(),
        };
        b.intern(NnfNode::True);
        b.intern(NnfNode::False);
        b
    }

    /// The ⊤ node.
    pub fn true_id(&self) -> NnfId {
        0
    }

    /// The ⊥ node.
    pub fn false_id(&self) -> NnfId {
        1
    }

    /// Number of nodes created so far (including unreachable ones).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    fn intern(&mut self, node: NnfNode) -> NnfId {
        if let Some(&id) = self.cache.get(&node) {
            return id;
        }
        let id = self.nodes.len() as NnfId;
        self.nodes.push(node.clone());
        self.cache.insert(node, id);
        id
    }

    /// A literal leaf.
    pub fn lit(&mut self, l: Lit) -> NnfId {
        debug_assert_ne!(l, 0);
        self.intern(NnfNode::Lit(l))
    }

    /// A conjunction. Simplifies: drops ⊤ children, collapses to ⊥ on any ⊥
    /// child, flattens nested ANDs, sorts and dedups children.
    pub fn and(&mut self, children: impl IntoIterator<Item = NnfId>) -> NnfId {
        let mut flat: Vec<NnfId> = Vec::new();
        let mut stack: Vec<NnfId> = children.into_iter().collect();
        while let Some(c) = stack.pop() {
            match &self.nodes[c as usize] {
                NnfNode::True => {}
                NnfNode::False => return self.false_id(),
                NnfNode::And(cs) => stack.extend(cs.iter().copied()),
                _ => flat.push(c),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.true_id(),
            1 => flat[0],
            _ => self.intern(NnfNode::And(flat.into_boxed_slice())),
        }
    }

    /// A sum node. Simplifies ⊥ children away. The compiler only ever
    /// builds deterministic (disjoint) disjunctions; transformation passes
    /// such as projection may produce `Or(a, a)`, which correctly evaluates
    /// to `2·a` (summing a projected variable's two phases).
    pub fn or(&mut self, a: NnfId, b: NnfId) -> NnfId {
        if a == self.false_id() {
            return b;
        }
        if b == self.false_id() {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(NnfNode::Or(a, b))
    }

    /// Extracts the sub-DAG reachable from `root` into a compact [`Nnf`]
    /// with renumbered, topologically ordered ids.
    pub fn extract(&self, root: NnfId) -> Nnf {
        let mut map: HashMap<NnfId, NnfId> = HashMap::new();
        let mut out: Vec<NnfNode> = Vec::new();
        // Iterative post-order to renumber children first.
        let mut stack: Vec<(NnfId, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if map.contains_key(&id) {
                continue;
            }
            if expanded {
                let node = match &self.nodes[id as usize] {
                    NnfNode::And(cs) => NnfNode::And(cs.iter().map(|c| map[c]).collect()),
                    NnfNode::Or(a, b) => NnfNode::Or(map[a], map[b]),
                    other => other.clone(),
                };
                let new_id = out.len() as NnfId;
                out.push(node);
                map.insert(id, new_id);
            } else {
                stack.push((id, true));
                match &self.nodes[id as usize] {
                    NnfNode::And(cs) => {
                        stack.extend(cs.iter().map(|&c| (c, false)));
                    }
                    NnfNode::Or(a, b) => {
                        stack.push((*a, false));
                        stack.push((*b, false));
                    }
                    _ => {}
                }
            }
        }
        Nnf {
            root: map[&root],
            nodes: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_structure() {
        let mut b = NnfBuilder::new();
        let x = b.lit(1);
        let y = b.lit(2);
        let a1 = b.and([x, y]);
        let a2 = b.and([y, x]); // same set, different order
        assert_eq!(a1, a2);
        assert_eq!(b.lit(1), x);
    }

    #[test]
    fn and_simplifications() {
        let mut b = NnfBuilder::new();
        let x = b.lit(1);
        let t = b.true_id();
        let f = b.false_id();
        assert_eq!(b.and([x, t]), x);
        assert_eq!(b.and([x, f]), f);
        assert_eq!(b.and([]), t);
        // Nested ANDs flatten.
        let y = b.lit(2);
        let inner = b.and([x, y]);
        let z = b.lit(3);
        let outer = b.and([inner, z]);
        match b.extract(outer).nodes().last().unwrap() {
            NnfNode::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn or_simplifications() {
        let mut b = NnfBuilder::new();
        let x = b.lit(1);
        let f = b.false_id();
        assert_eq!(b.or(x, f), x);
        assert_eq!(b.or(f, x), x);
        let y = b.lit(-1);
        let o1 = b.or(x, y);
        let o2 = b.or(y, x);
        assert_eq!(o1, o2, "OR is canonicalized by child order");
    }

    #[test]
    fn extract_renumbers_topologically() {
        let mut b = NnfBuilder::new();
        let x = b.lit(1);
        let nx = b.lit(-1);
        let y = b.lit(2);
        let left = b.and([x, y]);
        let right = b.and([nx, y]);
        let root = b.or(left, right);
        let nnf = b.extract(root);
        assert_eq!(nnf.root() as usize, nnf.num_nodes() - 1);
        // Children precede parents.
        for (i, n) in nnf.nodes().iter().enumerate() {
            match n {
                NnfNode::And(cs) => assert!(cs.iter().all(|&c| (c as usize) < i)),
                NnfNode::Or(a, b) => {
                    assert!((*a as usize) < i && (*b as usize) < i);
                }
                _ => {}
            }
        }
        // y is shared: 5 nodes total (x, nx, y, 2 ands, or) minus... count:
        assert_eq!(nnf.num_nodes(), 6);
        assert_eq!(nnf.num_edges(), 6);
        assert_eq!(nnf.mentioned_vars(), vec![1, 2]);
    }

    #[test]
    fn c2d_export_round_trips_counts() {
        let mut b = NnfBuilder::new();
        let x = b.lit(1);
        let nx = b.lit(-1);
        let y = b.lit(2);
        let left = b.and([x, y]);
        let right = b.and([nx, y]);
        let root = b.or(left, right);
        let nnf = b.extract(root);
        let text = nnf.to_c2d_format();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            format!("nnf {} {} 2", nnf.num_nodes(), nnf.num_edges())
        );
        assert_eq!(lines.clone().count(), nnf.num_nodes());
        assert_eq!(lines.filter(|l| l.starts_with('L')).count(), 3);
    }

    #[test]
    fn size_bytes_is_exact_arena_accounting() {
        let mut b = NnfBuilder::new();
        let x = b.lit(1);
        let y = b.lit(2);
        let a = b.and([x, y]);
        let nnf = b.extract(a);
        // 3 nodes (two literals + one AND with 2 boxed children).
        let expected = std::mem::size_of::<Nnf>()
            + 3 * std::mem::size_of::<NnfNode>()
            + 2 * std::mem::size_of::<NnfId>();
        assert_eq!(nnf.size_bytes(), expected);
        // Growing the structure grows the accounting.
        let z = b.lit(3);
        let bigger = b.and([a, z]);
        assert!(b.extract(bigger).size_bytes() > nnf.size_bytes());
    }
}
