//! Batched arithmetic-circuit evaluation: one NNF traversal amortized over
//! `k` literal-weight vectors.
//!
//! The paper's economics are compile-once-bind-many (§3.2): after knowledge
//! compilation every variational iteration only rewrites literal weights and
//! re-traverses the same AC. [`evaluate_batch`] exploits that across
//! *bindings* the way qsim's fused kernels exploit it across gates — the
//! node stream (the expensive, branchy part) is decoded once, and each node
//! updates `k` complex lanes held contiguously in a structure-of-arrays
//! buffer. Sweep throughput multiplies because per-node dispatch, bounds
//! checks, and the per-call value-buffer allocation are all paid once per
//! node instead of once per node per binding.
//!
//! Every lane is guaranteed **bit-for-bit identical** to the scalar
//! [`evaluate`](crate::evaluate())/
//! [`evaluate_with_differentials`](crate::evaluate_with_differentials())
//! result for the same weights: the per-lane operation sequence (including
//! the zero short-circuit at AND nodes and the zero-partial skip in the
//! downward pass) mirrors the scalar kernel exactly. The engine's sweep
//! executor relies on this to keep results byte-identical across batch
//! widths.

use crate::nnf::{Nnf, NnfNode};
use qkc_cnf::Lit;
use qkc_math::{Complex, C_ONE, C_ZERO};
use std::collections::HashMap;

/// Literal weights for `k` bindings in structure-of-arrays layout: for each
/// CNF variable, `k` contiguous positive lanes and `k` contiguous negative
/// lanes.
///
/// Lane `l` of the batch is exactly one scalar
/// [`AcWeights`](crate::AcWeights) vector; evidence that is shared by every
/// binding (query-variable indicators) is written once with
/// [`AcWeightsBatch::set_all`], per-binding parameter values with
/// [`AcWeightsBatch::set_lane`].
/// Lane rows are stored interleaved by [`AcWeights::slot_of`] slot — the
/// `k` lanes of `w(+v)` at row `2v`, of `w(-v)` at row `2v+1` — so the
/// compiled tape's precomputed literal slots index a row directly.
#[derive(Debug, Clone)]
pub struct AcWeightsBatch {
    w: Vec<Complex>,
    lanes: usize,
}

impl AcWeightsBatch {
    /// All-ones weights over `num_vars` variables and `lanes` bindings.
    pub fn uniform(num_vars: usize, lanes: usize) -> Self {
        Self {
            w: vec![C_ONE; 2 * (num_vars + 1) * lanes],
            lanes,
        }
    }

    /// All-zeros weights over `num_vars` variables and `lanes` bindings —
    /// the starting point for per-lane tangent vectors (see
    /// [`AcWeights::zeros`](crate::AcWeights::zeros)).
    pub fn zeros(num_vars: usize, lanes: usize) -> Self {
        Self {
            w: vec![C_ZERO; 2 * (num_vars + 1) * lanes],
            lanes,
        }
    }

    /// Number of lanes (bindings) per variable.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of variables covered (0 for an empty, zero-lane batch).
    pub fn num_vars(&self) -> usize {
        self.w
            .len()
            .checked_div(2 * self.lanes)
            .map_or(0, |rows| rows - 1)
    }

    /// Sets both polarities of variable `v` in lane `lane`.
    pub fn set_lane(&mut self, v: u32, lane: usize, pos: Complex, neg: Complex) {
        self.w[2 * v as usize * self.lanes + lane] = pos;
        self.w[(2 * v as usize + 1) * self.lanes + lane] = neg;
    }

    /// Sets both polarities of variable `v` in every lane (shared evidence).
    pub fn set_all(&mut self, v: u32, pos: Complex, neg: Complex) {
        let row = 2 * v as usize * self.lanes;
        self.w[row..row + self.lanes].fill(pos);
        self.w[row + self.lanes..row + 2 * self.lanes].fill(neg);
    }

    /// Copies every lane of variable `v` from `src` (row-level
    /// save/restore around evidence writes).
    ///
    /// # Panics
    ///
    /// Panics if `src` has a different lane count.
    pub fn copy_var_from(&mut self, src: &AcWeightsBatch, v: u32) {
        assert_eq!(self.lanes, src.lanes, "lane count mismatch");
        let row = 2 * v as usize * self.lanes;
        self.w[row..row + 2 * self.lanes].copy_from_slice(&src.w[row..row + 2 * self.lanes]);
    }

    /// The weight of literal `l` in lane `lane`.
    #[inline]
    pub fn get(&self, l: Lit, lane: usize) -> Complex {
        self.row(l)[lane]
    }

    /// The `k` lane weights of a literal, contiguous.
    #[inline]
    pub fn row(&self, l: Lit) -> &[Complex] {
        self.row_by_slot(crate::AcWeights::slot_of(l))
    }

    /// The `k` lane weights at a precomputed
    /// [`slot_of`](crate::AcWeights::slot_of) slot.
    #[inline]
    pub fn row_by_slot(&self, slot: u32) -> &[Complex] {
        &self.w[slot as usize * self.lanes..(slot as usize + 1) * self.lanes]
    }

    /// Number of interleaved slots covered (`2 × (num_vars + 1)`).
    #[inline]
    pub(crate) fn num_slots(&self) -> usize {
        self.w.len().checked_div(self.lanes).unwrap_or(0)
    }
}

/// Upward pass over `k` weight lanes in one traversal: returns the root
/// value of every lane, each bit-for-bit equal to the scalar
/// [`evaluate`](crate::evaluate()) of that lane's weights.
pub fn evaluate_batch(nnf: &Nnf, weights: &AcWeightsBatch) -> Vec<Complex> {
    let mut values = Vec::new();
    evaluate_batch_into(nnf, weights, &mut values).to_vec()
}

/// [`evaluate_batch`] with a caller-owned value buffer, so hot loops (one
/// AC pass per basis state) amortize the buffer allocation across calls.
/// Returns the `k` root values as a slice into `values`.
pub fn evaluate_batch_into<'v>(
    nnf: &Nnf,
    weights: &AcWeightsBatch,
    values: &'v mut Vec<Complex>,
) -> &'v [Complex] {
    let k = weights.lanes();
    if k == 0 {
        return &[];
    }
    // Every node row is written by the pass (False rows are filled with
    // zeros explicitly), so a resize without re-zeroing is sound.
    values.resize(nnf.num_nodes() * k, C_ZERO);
    upward_pass(nnf, weights, values);
    let root = nnf.root() as usize * k;
    &values[root..root + k]
}

/// The evaluation upward pass: fills `values` (node-major, `k` lanes per
/// node). Dispatches to a monomorphized body for the common lane counts so
/// the compiler can const-propagate `k` and fully unroll the per-lane
/// loops. (The differentials pass runs its own upward sweep — it needs
/// full AND products, without the zero short-circuit used here.)
fn upward_pass(nnf: &Nnf, weights: &AcWeightsBatch, values: &mut [Complex]) {
    match weights.lanes() {
        4 => upward_pass_impl(nnf, weights, values, 4),
        8 => upward_pass_impl(nnf, weights, values, 8),
        16 => upward_pass_impl(nnf, weights, values, 16),
        k => upward_pass_impl(nnf, weights, values, k),
    }
}

#[inline(always)]
fn upward_pass_impl(nnf: &Nnf, weights: &AcWeightsBatch, values: &mut [Complex], k: usize) {
    for (i, node) in nnf.nodes().iter().enumerate() {
        let row = i * k;
        // Children precede parents, so splitting at `row` always puts every
        // child lane in `head` and the current node's lanes at `tail[..k]`.
        let (head, tail) = values.split_at_mut(row);
        let out = &mut tail[..k];
        match node {
            NnfNode::True => out.fill(C_ONE),
            NnfNode::False => out.fill(C_ZERO),
            NnfNode::Lit(l) => out.copy_from_slice(weights.row(*l)),
            NnfNode::And(cs) => {
                out.fill(C_ONE);
                for &c in cs.iter() {
                    // Mirror the scalar kernel's early break, lifted to the
                    // batch: a zero lane stops multiplying (keeping the
                    // exact bits the scalar pass returns), and once every
                    // lane is dead the remaining children are skipped
                    // entirely. Zeros come almost exclusively from evidence
                    // weights, which are shared across lanes, so lanes
                    // usually die together and the whole-AND break fires
                    // about as often as the scalar one.
                    if out.iter().all(|a| *a == C_ZERO) {
                        break;
                    }
                    let child = &head[c as usize * k..c as usize * k + k];
                    for (acc, &v) in out.iter_mut().zip(child) {
                        if *acc != C_ZERO {
                            *acc *= v;
                        }
                    }
                }
            }
            NnfNode::Or(a, b) => {
                let a = &head[*a as usize * k..*a as usize * k + k];
                let b = &head[*b as usize * k..*b as usize * k + k];
                for (acc, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
                    *acc = x + y;
                }
            }
        }
    }
}

/// The result of a combined batched upward + downward pass: per-lane root
/// values and per-lane partial derivatives with respect to every literal.
#[derive(Debug)]
pub struct DifferentialsBatch {
    lanes: usize,
    values: Vec<Complex>,
    partials: Vec<Complex>,
    lit_nodes: HashMap<Lit, u32>,
    root: u32,
}

impl DifferentialsBatch {
    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The root value (amplitude) of lane `lane`.
    pub fn value(&self, lane: usize) -> Complex {
        self.values[self.root as usize * self.lanes + lane]
    }

    /// `∂f/∂w(lit)` in lane `lane` (see
    /// [`Differentials::wrt_lit`](crate::Differentials::wrt_lit)). Returns
    /// `None` if the literal does not appear in the circuit.
    pub fn wrt_lit(&self, lit: Lit, lane: usize) -> Option<Complex> {
        self.lit_nodes
            .get(&lit)
            .map(|&id| self.partials[id as usize * self.lanes + lane])
    }

    /// The partial derivative of the root with respect to node `id` in lane
    /// `lane`.
    pub fn wrt_node(&self, id: u32, lane: usize) -> Complex {
        self.partials[id as usize * self.lanes + lane]
    }
}

/// Combined batched upward and downward pass: one traversal each way,
/// updating `k` lanes per node. Lane `l` matches the scalar
/// [`evaluate_with_differentials`](crate::evaluate_with_differentials())
/// bit-for-bit.
pub fn evaluate_with_differentials_batch(
    nnf: &Nnf,
    weights: &AcWeightsBatch,
) -> DifferentialsBatch {
    let k = weights.lanes();
    let n = nnf.num_nodes();
    let mut values = vec![C_ZERO; n * k];
    let mut lit_nodes: HashMap<Lit, u32> = HashMap::new();
    // The downward pass needs full AND products, so run a dedicated upward
    // pass without the zero short-circuit (as the scalar kernel does).
    for (i, node) in nnf.nodes().iter().enumerate() {
        let row = i * k;
        let (head, tail) = values.split_at_mut(row);
        let out = &mut tail[..k];
        match node {
            NnfNode::True => out.fill(C_ONE),
            NnfNode::False => {}
            NnfNode::Lit(l) => {
                lit_nodes.insert(*l, i as u32);
                out.copy_from_slice(weights.row(*l));
            }
            NnfNode::And(cs) => {
                out.fill(C_ONE);
                for &c in cs.iter() {
                    let child = &head[c as usize * k..c as usize * k + k];
                    for (acc, &v) in out.iter_mut().zip(child) {
                        *acc *= v;
                    }
                }
            }
            NnfNode::Or(a, b) => {
                let arow = *a as usize * k;
                let brow = *b as usize * k;
                for (l, acc) in out.iter_mut().enumerate() {
                    *acc = head[arow + l] + head[brow + l];
                }
            }
        }
    }
    let mut partials = vec![C_ZERO; n * k];
    let root_row = nnf.root() as usize * k;
    partials[root_row..root_row + k].fill(C_ONE);
    // Per-AND scratch, reused across nodes: prefix products (child-major,
    // k lanes each), suffix/accumulator lanes, and a copy of the node's
    // partials (needed because `partials` is written below while the
    // node's own row must stay fixed).
    let mut prefix: Vec<Complex> = Vec::new();
    let mut suffix: Vec<Complex> = vec![C_ONE; k];
    let mut acc: Vec<Complex> = vec![C_ONE; k];
    let mut p: Vec<Complex> = Vec::new();
    for (i, node) in nnf.nodes().iter().enumerate().rev() {
        let row = i * k;
        match node {
            NnfNode::And(cs) => {
                let p_row = &partials[row..row + k];
                if p_row.iter().all(|&x| x == C_ZERO) {
                    continue;
                }
                p.clear();
                p.extend_from_slice(p_row);
                // prefix[c][l] here holds the SUFFIX Π_{j>c} v_j[l], stashed
                // from the right; the forward sweep then carries
                // pq = p·Π_{j<c} v_j in `acc`, exactly as the scalar kernel.
                prefix.clear();
                prefix.resize(cs.len() * k, C_ONE);
                suffix.fill(C_ONE);
                for (ci, &c) in cs.iter().enumerate().rev() {
                    prefix[ci * k..ci * k + k].copy_from_slice(&suffix);
                    let child = &values[c as usize * k..c as usize * k + k];
                    for (s, &v) in suffix.iter_mut().zip(child) {
                        *s *= v;
                    }
                }
                acc[..k].copy_from_slice(&p);
                for (ci, &c) in cs.iter().enumerate() {
                    let crow = c as usize * k;
                    for l in 0..k {
                        // Scalar kernel skips whole nodes whose partial is
                        // zero; the per-lane analogue keeps each lane's
                        // accumulation sequence (and so its bits) identical.
                        if p[l] != C_ZERO {
                            partials[crow + l] += acc[l] * prefix[ci * k + l];
                        }
                    }
                    let child = &values[crow..crow + k];
                    for (a, &v) in acc.iter_mut().zip(child) {
                        *a *= v;
                    }
                }
            }
            NnfNode::Or(a, b) => {
                let arow = *a as usize * k;
                let brow = *b as usize * k;
                for l in 0..k {
                    let p = partials[row + l];
                    if p != C_ZERO {
                        partials[arow + l] += p;
                        partials[brow + l] += p;
                    }
                }
            }
            _ => {}
        }
    }
    DifferentialsBatch {
        lanes: k,
        values,
        partials,
        lit_nodes,
        root: nnf.root(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};
    use crate::evaluate::{evaluate, evaluate_with_differentials, AcWeights};
    use crate::transform::smooth;
    use qkc_cnf::Cnf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_weights(num_vars: usize, rng: &mut StdRng) -> AcWeights {
        let mut w = AcWeights::uniform(num_vars);
        for v in 1..=num_vars as u32 {
            w.set(
                v,
                Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
                Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
            );
        }
        w
    }

    fn batch_of(lane_weights: &[AcWeights]) -> AcWeightsBatch {
        let num_vars = lane_weights[0].num_vars();
        let mut batch = AcWeightsBatch::uniform(num_vars, lane_weights.len());
        for (lane, w) in lane_weights.iter().enumerate() {
            for v in 1..=num_vars as u32 {
                batch.set_lane(v, lane, w.get(v as Lit), w.get(-(v as Lit)));
            }
        }
        batch
    }

    fn bits_eq(a: Complex, b: Complex) -> bool {
        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
    }

    fn test_nnf() -> Nnf {
        // (v1 ∨ v2) ∧ (¬v1 ∨ v3), smoothed over all variables.
        let mut f = Cnf::new(3);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, 3]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<Lit>> = (1..=3).map(|v| vec![v, -v]).collect();
        smooth(&c.nnf, &groups)
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let nnf = test_nnf();
        let mut rng = StdRng::seed_from_u64(11);
        for k in [1usize, 3, 8] {
            let lanes: Vec<AcWeights> = (0..k).map(|_| random_weights(3, &mut rng)).collect();
            let got = evaluate_batch(&nnf, &batch_of(&lanes));
            assert_eq!(got.len(), k);
            for (lane, w) in lanes.iter().enumerate() {
                let want = evaluate(&nnf, w);
                assert!(
                    bits_eq(got[lane], want),
                    "lane {lane}: {} vs {want}",
                    got[lane]
                );
            }
        }
    }

    #[test]
    fn batch_matches_scalar_with_zero_weights() {
        // Zero weights exercise the AND short-circuit; signs of zero must
        // still match the scalar kernel.
        let nnf = test_nnf();
        let mut w0 = AcWeights::uniform(3);
        w0.set(1, C_ZERO, Complex::real(-1.0));
        w0.set(2, C_ZERO, C_ONE);
        let mut w1 = AcWeights::uniform(3);
        w1.set(3, C_ZERO, C_ZERO);
        w1.set(1, Complex::real(-2.0), C_ONE);
        let lanes = [w0, w1];
        let got = evaluate_batch(&nnf, &batch_of(&lanes));
        for (lane, w) in lanes.iter().enumerate() {
            assert!(bits_eq(got[lane], evaluate(&nnf, w)), "lane {lane}");
        }
    }

    #[test]
    fn differentials_batch_matches_scalar_bit_for_bit() {
        let nnf = test_nnf();
        let mut rng = StdRng::seed_from_u64(23);
        let lanes: Vec<AcWeights> = (0..5).map(|_| random_weights(3, &mut rng)).collect();
        let batch = evaluate_with_differentials_batch(&nnf, &batch_of(&lanes));
        assert_eq!(batch.lanes(), 5);
        for (lane, w) in lanes.iter().enumerate() {
            let scalar = evaluate_with_differentials(&nnf, w);
            assert!(
                bits_eq(batch.value(lane), scalar.value),
                "value lane {lane}"
            );
            for v in 1..=3i32 {
                for lit in [v, -v] {
                    let got = batch.wrt_lit(lit, lane);
                    let want = scalar.wrt_lit(lit);
                    match (got, want) {
                        (Some(g), Some(s)) => {
                            assert!(bits_eq(g, s), "lit {lit} lane {lane}: {g} vs {s}");
                        }
                        (None, None) => {}
                        other => panic!("lit {lit} lane {lane}: presence mismatch {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn differentials_batch_handles_zero_partials() {
        // Evidence weights with zeros: the downward pass must stay exact
        // (prefix/suffix products, no divisions) in every lane.
        let nnf = test_nnf();
        let mut w = AcWeights::uniform(3);
        w.set(1, C_ONE, C_ZERO);
        w.set(2, C_ZERO, C_ONE);
        w.set(3, C_ONE, C_ZERO);
        let lanes = [w.clone(), w];
        let batch = evaluate_with_differentials_batch(&nnf, &batch_of(&lanes));
        let scalar = evaluate_with_differentials(&nnf, &lanes[0]);
        for lane in 0..2 {
            for v in 1..=3i32 {
                for lit in [v, -v] {
                    assert_eq!(
                        batch.wrt_lit(lit, lane).map(|c| (c.re, c.im)),
                        scalar.wrt_lit(lit).map(|c| (c.re, c.im)),
                        "lit {lit} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let nnf = test_nnf();
        let batch = AcWeightsBatch::uniform(3, 0);
        assert!(evaluate_batch(&nnf, &batch).is_empty());
        assert_eq!(batch.num_vars(), 0);
    }

    #[test]
    fn accessors_cover_lanes() {
        let mut b = AcWeightsBatch::uniform(2, 3);
        assert_eq!(b.lanes(), 3);
        assert_eq!(b.num_vars(), 2);
        b.set_lane(1, 1, Complex::imag(2.0), Complex::real(3.0));
        assert_eq!(b.get(1, 1), Complex::imag(2.0));
        assert_eq!(b.get(-1, 1), Complex::real(3.0));
        assert_eq!(b.get(1, 0), C_ONE);
        b.set_all(2, C_ZERO, C_ONE);
        for lane in 0..3 {
            assert_eq!(b.get(2, lane), C_ZERO);
            assert_eq!(b.get(-2, lane), C_ONE);
        }
        assert_eq!(b.row(2), &[C_ZERO; 3]);
    }
}
