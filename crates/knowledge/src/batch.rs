//! Batched arithmetic-circuit evaluation: one NNF traversal amortized over
//! `k` literal-weight vectors.
//!
//! The paper's economics are compile-once-bind-many (§3.2): after knowledge
//! compilation every variational iteration only rewrites literal weights and
//! re-traverses the same AC. [`evaluate_batch`] exploits that across
//! *bindings* the way qsim's fused kernels exploit it across gates — the
//! node stream (the expensive, branchy part) is decoded once, and each node
//! updates `k` complex lanes held in lane-blocked split-plane layout
//! ([`LaneBlock`]): per node, `⌈k/W⌉` blocks of `W` real lanes plus `W`
//! imaginary lanes, so every per-node update is a straight-line loop the
//! compiler vectorizes. Sweep throughput multiplies because per-node
//! dispatch, bounds checks, and the per-call value-buffer allocation are
//! all paid once per node instead of once per node per binding.
//!
//! Every lane is guaranteed **bit-for-bit identical** to the scalar
//! [`evaluate`](crate::evaluate())/
//! [`evaluate_with_differentials`](crate::evaluate_with_differentials())
//! result for the same weights: the per-lane operation sequence (including
//! the zero short-circuit at AND nodes and the zero-partial skip in the
//! downward pass, both expressed as per-lane selects — see
//! [`crate::lanes`]) mirrors the scalar kernel exactly. The engine's sweep
//! executor relies on this to keep results byte-identical across batch
//! widths. Ragged `k` occupies the trailing block's leading lanes; its
//! dead lanes are zero-filled and carried along as a masked remainder.

use crate::lanes::{blocks_for, LaneBlock, LANE_WIDTH};
use crate::nnf::{Nnf, NnfNode};
use qkc_cnf::Lit;
use qkc_math::{Complex, C_ONE, C_ZERO};
use std::collections::HashMap;

/// Literal weights for `k` bindings in lane-blocked split-plane layout:
/// for each weight slot (row), `⌈k/W⌉` [`LaneBlock`]s of `W` lanes.
///
/// Lane `l` of the batch is exactly one scalar
/// [`AcWeights`](crate::AcWeights) vector; evidence that is shared by every
/// binding (query-variable indicators) is written once with
/// [`AcWeightsBatch::set_all`], per-binding parameter values with
/// [`AcWeightsBatch::set_lane`].
/// Rows are ordered by [`AcWeights::slot_of`](crate::AcWeights::slot_of)
/// slot — the blocks of `w(+v)` at row `2v`, of `w(-v)` at row `2v+1` — so
/// the compiled tape's precomputed literal slots index a row of blocks
/// directly. Dead lanes of a ragged trailing block are zero and stay zero.
#[derive(Debug, Clone)]
pub struct AcWeightsBatch {
    blocks: Vec<LaneBlock>,
    lanes: usize,
    num_vars: usize,
}

impl AcWeightsBatch {
    fn filled(num_vars: usize, lanes: usize, live: Complex) -> Self {
        let nb = blocks_for(lanes);
        let slots = if lanes == 0 { 0 } else { 2 * (num_vars + 1) };
        let mut blocks = vec![LaneBlock::splat(live); slots * nb];
        if !lanes.is_multiple_of(LANE_WIDTH) {
            // Ragged batch: the trailing block of every row carries live
            // lanes only in its head; dead lanes hold exact zeros.
            let mut tail = LaneBlock::ZERO;
            for w in 0..lanes % LANE_WIDTH {
                tail.set(w, live);
            }
            for s in 0..slots {
                blocks[s * nb + nb - 1] = tail;
            }
        }
        Self {
            blocks,
            lanes,
            num_vars: if lanes == 0 { 0 } else { num_vars },
        }
    }

    /// All-ones weights over `num_vars` variables and `lanes` bindings.
    pub fn uniform(num_vars: usize, lanes: usize) -> Self {
        Self::filled(num_vars, lanes, C_ONE)
    }

    /// All-zeros weights over `num_vars` variables and `lanes` bindings —
    /// the starting point for per-lane tangent vectors (see
    /// [`AcWeights::zeros`](crate::AcWeights::zeros)).
    pub fn zeros(num_vars: usize, lanes: usize) -> Self {
        Self::filled(num_vars, lanes, C_ZERO)
    }

    /// Number of lanes (bindings) per variable.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of [`LaneBlock`]s per weight row (`⌈lanes/W⌉`).
    #[inline]
    pub fn blocks_per_row(&self) -> usize {
        blocks_for(self.lanes)
    }

    /// Number of variables covered (0 for an empty, zero-lane batch).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets both polarities of variable `v` in lane `lane`.
    pub fn set_lane(&mut self, v: u32, lane: usize, pos: Complex, neg: Complex) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        let nb = self.blocks_per_row();
        let (blk, w) = (lane / LANE_WIDTH, lane % LANE_WIDTH);
        self.blocks[2 * v as usize * nb + blk].set(w, pos);
        self.blocks[(2 * v as usize + 1) * nb + blk].set(w, neg);
    }

    /// Sets both polarities of variable `v` in every live lane (shared
    /// evidence). Dead remainder lanes stay zero.
    pub fn set_all(&mut self, v: u32, pos: Complex, neg: Complex) {
        let nb = self.blocks_per_row();
        let full = self.lanes / LANE_WIDTH;
        let rem = self.lanes % LANE_WIDTH;
        for (value, row) in [(pos, 2 * v as usize), (neg, 2 * v as usize + 1)] {
            let blocks = &mut self.blocks[row * nb..(row + 1) * nb];
            for b in &mut blocks[..full] {
                *b = LaneBlock::splat(value);
            }
            if rem != 0 {
                let tail = &mut blocks[full];
                for w in 0..rem {
                    tail.set(w, value);
                }
            }
        }
    }

    /// Copies every lane of variable `v` from `src` (row-level
    /// save/restore around evidence writes).
    ///
    /// # Panics
    ///
    /// Panics if `src` has a different lane count.
    pub fn copy_var_from(&mut self, src: &AcWeightsBatch, v: u32) {
        assert_eq!(self.lanes, src.lanes, "lane count mismatch");
        let nb = self.blocks_per_row();
        let row = 2 * v as usize * nb;
        self.blocks[row..row + 2 * nb].copy_from_slice(&src.blocks[row..row + 2 * nb]);
    }

    /// The weight of literal `l` in lane `lane`.
    #[inline]
    pub fn get(&self, l: Lit, lane: usize) -> Complex {
        self.row_blocks(l)[lane / LANE_WIDTH].get(lane % LANE_WIDTH)
    }

    /// The blocks holding a literal's `k` lane weights.
    #[inline]
    pub fn row_blocks(&self, l: Lit) -> &[LaneBlock] {
        self.row_blocks_by_slot(crate::AcWeights::slot_of(l))
    }

    /// The blocks at a precomputed
    /// [`slot_of`](crate::AcWeights::slot_of) slot.
    #[inline]
    pub fn row_blocks_by_slot(&self, slot: u32) -> &[LaneBlock] {
        let nb = self.blocks_per_row();
        &self.blocks[slot as usize * nb..(slot as usize + 1) * nb]
    }

    /// Number of weight rows covered (`2 × (num_vars + 1)`; 0 when empty).
    #[inline]
    pub(crate) fn num_slots(&self) -> usize {
        if self.lanes == 0 {
            0
        } else {
            2 * (self.num_vars + 1)
        }
    }
}

/// Unpacks the live lanes of node `id`'s block row into `out`.
#[inline]
pub(crate) fn unpack_row(
    values: &[LaneBlock],
    id: usize,
    nb: usize,
    k: usize,
    out: &mut Vec<Complex>,
) {
    out.clear();
    let row = &values[id * nb..id * nb + nb];
    out.extend((0..k).map(|l| row[l / LANE_WIDTH].get(l % LANE_WIDTH)));
}

/// Upward pass over `k` weight lanes in one traversal: returns the root
/// value of every lane, each bit-for-bit equal to the scalar
/// [`evaluate`](crate::evaluate()) of that lane's weights.
pub fn evaluate_batch(nnf: &Nnf, weights: &AcWeightsBatch) -> Vec<Complex> {
    let mut values = Vec::new();
    let mut out = Vec::new();
    evaluate_batch_into(nnf, weights, &mut values, &mut out);
    out
}

/// [`evaluate_batch`] with caller-owned buffers, so hot loops (one AC pass
/// per basis state) amortize the allocations across calls: `values` holds
/// the node-major lane blocks, `out` receives the `k` root values, and the
/// returned slice borrows `out`.
pub fn evaluate_batch_into<'v>(
    nnf: &Nnf,
    weights: &AcWeightsBatch,
    values: &mut Vec<LaneBlock>,
    out: &'v mut Vec<Complex>,
) -> &'v [Complex] {
    let k = weights.lanes();
    out.clear();
    if k == 0 {
        return &[];
    }
    let nb = weights.blocks_per_row();
    // Every node row is written by the pass (False rows are filled with
    // zeros explicitly), so a resize without re-zeroing is sound.
    values.resize(nnf.num_nodes() * nb, LaneBlock::ZERO);
    upward_pass(nnf, weights, values, nb);
    unpack_row(values, nnf.root() as usize, nb, k, out);
    out
}

/// The evaluation upward pass: fills `values` (node-major, `nb` blocks per
/// node). Each block update is a fixed-width split-plane loop, so there is
/// one vectorized body for every lane count — ragged batches ride the
/// masked remainder block instead of a hand-monomorphized `k`. (The
/// differentials pass runs its own upward sweep — it needs full AND
/// products, without the zero short-circuit used here.)
fn upward_pass(nnf: &Nnf, weights: &AcWeightsBatch, values: &mut [LaneBlock], nb: usize) {
    for (i, node) in nnf.nodes().iter().enumerate() {
        let row = i * nb;
        // Children precede parents, so splitting at `row` always puts every
        // child block in `head` and the current node's blocks at `tail[..nb]`.
        let (head, tail) = values.split_at_mut(row);
        let out = &mut tail[..nb];
        match node {
            NnfNode::True => out.fill(LaneBlock::ONE),
            NnfNode::False => out.fill(LaneBlock::ZERO),
            NnfNode::Lit(l) => out.copy_from_slice(weights.row_blocks(*l)),
            NnfNode::And(cs) => {
                out.fill(LaneBlock::ONE);
                for &c in cs.iter() {
                    // Mirror the scalar kernel's early break, lifted to the
                    // batch: a zero lane stops multiplying (the select in
                    // `mul_assign_sc` keeps the exact bits the scalar pass
                    // returns), and once every lane is dead the remaining
                    // children are skipped entirely. Zeros come almost
                    // exclusively from evidence weights, which are shared
                    // across lanes, so lanes usually die together and the
                    // whole-AND break fires about as often as the scalar
                    // one.
                    if out.iter().all(LaneBlock::all_zero) {
                        break;
                    }
                    let child = &head[c as usize * nb..c as usize * nb + nb];
                    for (acc, v) in out.iter_mut().zip(child) {
                        acc.mul_assign_sc(v);
                    }
                }
            }
            NnfNode::Or(a, b) => {
                let a = &head[*a as usize * nb..*a as usize * nb + nb];
                let b = &head[*b as usize * nb..*b as usize * nb + nb];
                for (acc, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
                    acc.add_of(x, y);
                }
            }
        }
    }
}

/// The result of a combined batched upward + downward pass: per-lane root
/// values and per-lane partial derivatives with respect to every literal.
#[derive(Debug)]
pub struct DifferentialsBatch {
    lanes: usize,
    nb: usize,
    values: Vec<LaneBlock>,
    partials: Vec<LaneBlock>,
    lit_nodes: HashMap<Lit, u32>,
    root: u32,
}

impl DifferentialsBatch {
    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The root value (amplitude) of lane `lane`.
    pub fn value(&self, lane: usize) -> Complex {
        self.values[self.root as usize * self.nb + lane / LANE_WIDTH].get(lane % LANE_WIDTH)
    }

    /// `∂f/∂w(lit)` in lane `lane` (see
    /// [`Differentials::wrt_lit`](crate::Differentials::wrt_lit)). Returns
    /// `None` if the literal does not appear in the circuit.
    pub fn wrt_lit(&self, lit: Lit, lane: usize) -> Option<Complex> {
        self.lit_nodes.get(&lit).map(|&id| self.wrt_node(id, lane))
    }

    /// The partial derivative of the root with respect to node `id` in lane
    /// `lane`.
    pub fn wrt_node(&self, id: u32, lane: usize) -> Complex {
        self.partials[id as usize * self.nb + lane / LANE_WIDTH].get(lane % LANE_WIDTH)
    }
}

/// Combined batched upward and downward pass: one traversal each way,
/// updating `k` lanes per node. Lane `l` matches the scalar
/// [`evaluate_with_differentials`](crate::evaluate_with_differentials())
/// bit-for-bit.
pub fn evaluate_with_differentials_batch(
    nnf: &Nnf,
    weights: &AcWeightsBatch,
) -> DifferentialsBatch {
    let k = weights.lanes();
    let nb = weights.blocks_per_row();
    let n = nnf.num_nodes();
    let mut values = vec![LaneBlock::ZERO; n * nb];
    let mut lit_nodes: HashMap<Lit, u32> = HashMap::new();
    // The downward pass needs full AND products, so run a dedicated upward
    // pass without the zero short-circuit (as the scalar kernel does).
    for (i, node) in nnf.nodes().iter().enumerate() {
        let row = i * nb;
        let (head, tail) = values.split_at_mut(row);
        let out = &mut tail[..nb];
        match node {
            NnfNode::True => out.fill(LaneBlock::ONE),
            NnfNode::False => {}
            NnfNode::Lit(l) => {
                lit_nodes.insert(*l, i as u32);
                out.copy_from_slice(weights.row_blocks(*l));
            }
            NnfNode::And(cs) => {
                out.fill(LaneBlock::ONE);
                for &c in cs.iter() {
                    let child = &head[c as usize * nb..c as usize * nb + nb];
                    for (acc, v) in out.iter_mut().zip(child) {
                        acc.mul_assign(v);
                    }
                }
            }
            NnfNode::Or(a, b) => {
                let arow = *a as usize * nb;
                let brow = *b as usize * nb;
                for (bi, acc) in out.iter_mut().enumerate() {
                    let (x, y) = (head[arow + bi], head[brow + bi]);
                    acc.add_of(&x, &y);
                }
            }
        }
    }
    let mut partials = vec![LaneBlock::ZERO; n * nb];
    let root_row = nnf.root() as usize * nb;
    partials[root_row..root_row + nb].fill(LaneBlock::ONE);
    // Per-AND scratch, reused across nodes: prefix products (child-major,
    // nb blocks each), suffix/accumulator blocks, and a copy of the node's
    // partials (needed because `partials` is written below while the
    // node's own row must stay fixed).
    let mut prefix: Vec<LaneBlock> = Vec::new();
    let mut suffix: Vec<LaneBlock> = vec![LaneBlock::ONE; nb];
    let mut acc: Vec<LaneBlock> = vec![LaneBlock::ONE; nb];
    let mut p: Vec<LaneBlock> = Vec::new();
    for (i, node) in nnf.nodes().iter().enumerate().rev() {
        let row = i * nb;
        match node {
            NnfNode::And(cs) => {
                let p_row = &partials[row..row + nb];
                if p_row.iter().all(LaneBlock::all_zero) {
                    continue;
                }
                p.clear();
                p.extend_from_slice(p_row);
                // prefix[c] here holds the SUFFIX Π_{j>c} v_j, stashed
                // from the right; the forward sweep then carries
                // pq = p·Π_{j<c} v_j in `acc`, exactly as the scalar kernel.
                prefix.clear();
                prefix.resize(cs.len() * nb, LaneBlock::ONE);
                suffix.fill(LaneBlock::ONE);
                for (ci, &c) in cs.iter().enumerate().rev() {
                    prefix[ci * nb..ci * nb + nb].copy_from_slice(&suffix);
                    let child = &values[c as usize * nb..c as usize * nb + nb];
                    for (s, v) in suffix.iter_mut().zip(child) {
                        s.mul_assign(v);
                    }
                }
                acc[..nb].copy_from_slice(&p);
                for (ci, &c) in cs.iter().enumerate() {
                    let crow = c as usize * nb;
                    for bi in 0..nb {
                        // Scalar kernel skips whole nodes whose partial is
                        // zero; the per-lane select keeps each lane's
                        // accumulation sequence (and so its bits) identical.
                        let term_a = acc[bi];
                        partials[crow + bi].add_mul_where(&p[bi], &term_a, &prefix[ci * nb + bi]);
                    }
                    let child = &values[crow..crow + nb];
                    for (a, v) in acc.iter_mut().zip(child) {
                        a.mul_assign(v);
                    }
                }
            }
            NnfNode::Or(a, b) => {
                let arow = *a as usize * nb;
                let brow = *b as usize * nb;
                for bi in 0..nb {
                    let p = partials[row + bi];
                    partials[arow + bi].add_where_nonzero(&p);
                    partials[brow + bi].add_where_nonzero(&p);
                }
            }
            _ => {}
        }
    }
    DifferentialsBatch {
        lanes: k,
        nb,
        values,
        partials,
        lit_nodes,
        root: nnf.root(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};
    use crate::evaluate::{evaluate, evaluate_with_differentials, AcWeights};
    use crate::transform::smooth;
    use qkc_cnf::Cnf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_weights(num_vars: usize, rng: &mut StdRng) -> AcWeights {
        let mut w = AcWeights::uniform(num_vars);
        for v in 1..=num_vars as u32 {
            w.set(
                v,
                Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
                Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
            );
        }
        w
    }

    fn batch_of(lane_weights: &[AcWeights]) -> AcWeightsBatch {
        let num_vars = lane_weights[0].num_vars();
        let mut batch = AcWeightsBatch::uniform(num_vars, lane_weights.len());
        for (lane, w) in lane_weights.iter().enumerate() {
            for v in 1..=num_vars as u32 {
                batch.set_lane(v, lane, w.get(v as Lit), w.get(-(v as Lit)));
            }
        }
        batch
    }

    fn bits_eq(a: Complex, b: Complex) -> bool {
        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
    }

    fn test_nnf() -> Nnf {
        // (v1 ∨ v2) ∧ (¬v1 ∨ v3), smoothed over all variables.
        let mut f = Cnf::new(3);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, 3]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<Lit>> = (1..=3).map(|v| vec![v, -v]).collect();
        smooth(&c.nnf, &groups)
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let nnf = test_nnf();
        let mut rng = StdRng::seed_from_u64(11);
        // Ragged widths straddle the block boundary: 1, W−1, W, W+1, 2W+3.
        for k in [
            1usize,
            3,
            LANE_WIDTH - 1,
            LANE_WIDTH,
            LANE_WIDTH + 1,
            2 * LANE_WIDTH + 3,
        ] {
            let lanes: Vec<AcWeights> = (0..k).map(|_| random_weights(3, &mut rng)).collect();
            let got = evaluate_batch(&nnf, &batch_of(&lanes));
            assert_eq!(got.len(), k);
            for (lane, w) in lanes.iter().enumerate() {
                let want = evaluate(&nnf, w);
                assert!(
                    bits_eq(got[lane], want),
                    "k {k} lane {lane}: {} vs {want}",
                    got[lane]
                );
            }
        }
    }

    #[test]
    fn batch_matches_scalar_with_zero_weights() {
        // Zero weights exercise the AND short-circuit; signs of zero must
        // still match the scalar kernel.
        let nnf = test_nnf();
        let mut w0 = AcWeights::uniform(3);
        w0.set(1, C_ZERO, Complex::real(-1.0));
        w0.set(2, C_ZERO, C_ONE);
        let mut w1 = AcWeights::uniform(3);
        w1.set(3, C_ZERO, C_ZERO);
        w1.set(1, Complex::real(-2.0), C_ONE);
        let lanes = [w0, w1];
        let got = evaluate_batch(&nnf, &batch_of(&lanes));
        for (lane, w) in lanes.iter().enumerate() {
            assert!(bits_eq(got[lane], evaluate(&nnf, w)), "lane {lane}");
        }
    }

    #[test]
    fn differentials_batch_matches_scalar_bit_for_bit() {
        let nnf = test_nnf();
        let mut rng = StdRng::seed_from_u64(23);
        for k in [1usize, 5, LANE_WIDTH, LANE_WIDTH + 1, 2 * LANE_WIDTH + 3] {
            let lanes: Vec<AcWeights> = (0..k).map(|_| random_weights(3, &mut rng)).collect();
            let batch = evaluate_with_differentials_batch(&nnf, &batch_of(&lanes));
            assert_eq!(batch.lanes(), k);
            for (lane, w) in lanes.iter().enumerate() {
                let scalar = evaluate_with_differentials(&nnf, w);
                assert!(
                    bits_eq(batch.value(lane), scalar.value),
                    "value k {k} lane {lane}"
                );
                for v in 1..=3i32 {
                    for lit in [v, -v] {
                        let got = batch.wrt_lit(lit, lane);
                        let want = scalar.wrt_lit(lit);
                        match (got, want) {
                            (Some(g), Some(s)) => {
                                assert!(bits_eq(g, s), "lit {lit} lane {lane}: {g} vs {s}");
                            }
                            (None, None) => {}
                            other => panic!("lit {lit} lane {lane}: presence mismatch {other:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn differentials_batch_handles_zero_partials() {
        // Evidence weights with zeros: the downward pass must stay exact
        // (prefix/suffix products, no divisions) in every lane.
        let nnf = test_nnf();
        let mut w = AcWeights::uniform(3);
        w.set(1, C_ONE, C_ZERO);
        w.set(2, C_ZERO, C_ONE);
        w.set(3, C_ONE, C_ZERO);
        let lanes = [w.clone(), w];
        let batch = evaluate_with_differentials_batch(&nnf, &batch_of(&lanes));
        let scalar = evaluate_with_differentials(&nnf, &lanes[0]);
        for lane in 0..2 {
            for v in 1..=3i32 {
                for lit in [v, -v] {
                    assert_eq!(
                        batch.wrt_lit(lit, lane).map(|c| (c.re, c.im)),
                        scalar.wrt_lit(lit).map(|c| (c.re, c.im)),
                        "lit {lit} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let nnf = test_nnf();
        let batch = AcWeightsBatch::uniform(3, 0);
        assert!(evaluate_batch(&nnf, &batch).is_empty());
        assert_eq!(batch.num_vars(), 0);
    }

    #[test]
    fn accessors_cover_lanes() {
        let mut b = AcWeightsBatch::uniform(2, 3);
        assert_eq!(b.lanes(), 3);
        assert_eq!(b.num_vars(), 2);
        assert_eq!(b.blocks_per_row(), 1);
        b.set_lane(1, 1, Complex::imag(2.0), Complex::real(3.0));
        assert_eq!(b.get(1, 1), Complex::imag(2.0));
        assert_eq!(b.get(-1, 1), Complex::real(3.0));
        assert_eq!(b.get(1, 0), C_ONE);
        b.set_all(2, C_ZERO, C_ONE);
        for lane in 0..3 {
            assert_eq!(b.get(2, lane), C_ZERO);
            assert_eq!(b.get(-2, lane), C_ONE);
        }
        // Dead remainder lanes stay exact zeros (masked remainder block).
        let row = b.row_blocks(2);
        assert_eq!(row.len(), 1);
        for w in 3..LANE_WIDTH {
            assert_eq!(row[0].get(w), C_ZERO);
        }
        let neg = b.row_blocks(-2)[0];
        for w in 3..LANE_WIDTH {
            assert_eq!(neg.get(w), C_ZERO);
        }
    }

    #[test]
    fn ragged_blocks_and_copy() {
        // k = W+2 spans two blocks; copy_var_from restores both rows.
        let k = LANE_WIDTH + 2;
        let mut a = AcWeightsBatch::uniform(2, k);
        let saved = a.clone();
        a.set_all(1, C_ZERO, Complex::real(4.0));
        for lane in 0..k {
            assert_eq!(a.get(1, lane), C_ZERO);
            assert_eq!(a.get(-1, lane), Complex::real(4.0));
        }
        a.copy_var_from(&saved, 1);
        for lane in 0..k {
            assert_eq!(a.get(1, lane), C_ONE);
            assert_eq!(a.get(-1, lane), C_ONE);
        }
    }
}
