//! The CNF → d-DNNF knowledge compiler (paper §3.2.2).
//!
//! This is the workspace's stand-in for UCLA's c2d: exhaustive DPLL search
//! that records its trace as a d-DNNF circuit. The three classic ingredients
//! are all here:
//!
//! 1. **Unit propagation (BCP)** — implied literals become AND conjuncts;
//! 2. **Component decomposition** — when the residual clauses split into
//!    variable-disjoint parts, each part is compiled independently and the
//!    results conjoined (this is where quantum circuits' locality pays off);
//! 3. **Component caching** — residual components are memoized, so isomorphic
//!    sub-problems (e.g. repeated circuit layers) compile once.
//!
//! Branching follows a static [`VarOrder`]; the compile may take time
//! exponential in the worst case (the paper's RCS workloads), but the
//! compiled circuit is then reused across every simulation query.

use crate::nnf::{Nnf, NnfBuilder, NnfId};
use crate::order::{compute_ranks_balanced, VarOrder, DEFAULT_SEPARATOR_BALANCE};
use qkc_cnf::{lit_sign, lit_var, Cnf, Lit};
use std::collections::HashMap;

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Decision-variable order.
    pub order: VarOrder,
    /// Enable component caching (disable only for ablation benchmarks).
    pub cache: bool,
    /// Bisection split fraction for [`VarOrder::MinCutSeparator`] (see
    /// [`compute_ranks_balanced`](crate::compute_ranks_balanced)); `0.5`
    /// is the balanced default.
    pub separator_balance: f64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            order: VarOrder::MinCutSeparator,
            cache: true,
            separator_balance: DEFAULT_SEPARATOR_BALANCE,
        }
    }
}

/// Statistics from one compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Number of decision branches explored.
    pub decisions: u64,
    /// Component-cache hits.
    pub cache_hits: u64,
    /// Components created (cache misses).
    pub components: u64,
    /// Wall time spent computing the variable order (min-cut ranks).
    pub order_seconds: f64,
    /// Wall time spent in the DPLL/d-DNNF exhaustive search itself.
    pub search_seconds: f64,
}

/// The result of compilation.
#[derive(Debug)]
pub struct Compiled {
    /// The d-DNNF circuit.
    pub nnf: Nnf,
    /// Search statistics.
    pub stats: CompileStats,
}

/// Compiles a CNF into d-DNNF.
///
/// # Examples
///
/// ```
/// use qkc_cnf::Cnf;
/// use qkc_knowledge::{compile, CompileOptions};
///
/// let mut f = Cnf::new(2);
/// f.add_clause(vec![1, 2]);
/// let compiled = compile(&f, &CompileOptions::default());
/// assert!(compiled.nnf.num_nodes() >= 3);
/// ```
pub fn compile(cnf: &Cnf, options: &CompileOptions) -> Compiled {
    // Deep recursion scales with variable count; run on a dedicated thread
    // with a generous stack so large circuits cannot overflow.
    let cnf = cnf.clone();
    let options = options.clone();
    std::thread::Builder::new()
        .name("qkc-compile".into())
        .stack_size(512 << 20)
        .spawn(move || compile_on_this_thread(&cnf, &options))
        .expect("spawn compiler thread")
        .join()
        .expect("compiler thread panicked")
}

fn compile_on_this_thread(cnf: &Cnf, options: &CompileOptions) -> Compiled {
    let order_start = std::time::Instant::now();
    let ranks = compute_ranks_balanced(cnf, options.order, options.separator_balance);
    let order_seconds = order_start.elapsed().as_secs_f64();
    let mut state = Dpll {
        clauses: cnf.clauses().to_vec(),
        occurs: build_occurs(cnf),
        assign: vec![0i8; cnf.num_vars() + 1],
        trail: Vec::new(),
        ranks,
        builder: NnfBuilder::new(),
        cache: HashMap::new(),
        use_cache: options.cache,
        stats: CompileStats::default(),
    };
    let all: Vec<u32> = (0..cnf.num_clauses() as u32).collect();
    let search_start = std::time::Instant::now();
    let root = state.solve(&all);
    state.stats.order_seconds = order_seconds;
    state.stats.search_seconds = search_start.elapsed().as_secs_f64();
    Compiled {
        nnf: state.builder.extract(root),
        stats: state.stats,
    }
}

fn build_occurs(cnf: &Cnf) -> Vec<Vec<u32>> {
    let mut occurs = vec![Vec::new(); cnf.num_vars() + 1];
    for (ci, c) in cnf.clauses().iter().enumerate() {
        for &l in c {
            occurs[lit_var(l) as usize].push(ci as u32);
        }
    }
    occurs
}

struct Dpll {
    clauses: Vec<Vec<Lit>>,
    #[allow(dead_code)]
    occurs: Vec<Vec<u32>>,
    /// 0 unassigned, 1 true, -1 false (1-based variables).
    assign: Vec<i8>,
    /// Assigned variables, for undo.
    trail: Vec<u32>,
    ranks: Vec<u32>,
    builder: NnfBuilder,
    cache: HashMap<Box<[u32]>, NnfId>,
    use_cache: bool,
    stats: CompileStats,
}

enum ClauseStatus {
    Satisfied,
    Unit(Lit),
    Conflict,
    Open,
}

impl Dpll {
    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assign[lit_var(l) as usize];
        if lit_sign(l) {
            a
        } else {
            -a
        }
    }

    fn clause_status(&self, ci: u32) -> ClauseStatus {
        let mut unassigned: Option<Lit> = None;
        let mut count = 0;
        for &l in &self.clauses[ci as usize] {
            match self.lit_value(l) {
                1 => return ClauseStatus::Satisfied,
                0 => {
                    count += 1;
                    unassigned = Some(l);
                }
                _ => {}
            }
        }
        match count {
            0 => ClauseStatus::Conflict,
            1 => ClauseStatus::Unit(unassigned.expect("one unassigned literal")),
            _ => ClauseStatus::Open,
        }
    }

    fn assign_lit(&mut self, l: Lit) {
        let v = lit_var(l);
        debug_assert_eq!(self.assign[v as usize], 0);
        self.assign[v as usize] = if lit_sign(l) { 1 } else { -1 };
        self.trail.push(v);
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail non-empty");
            self.assign[v as usize] = 0;
        }
    }

    /// Unit propagation restricted to `clause_ids`. Returns implied literals
    /// or `Err(())` on conflict. Assignments stay on the trail either way;
    /// the caller undoes.
    fn bcp(&mut self, clause_ids: &[u32]) -> Result<Vec<Lit>, ()> {
        let mut implied = Vec::new();
        loop {
            let mut progressed = false;
            for &ci in clause_ids {
                match self.clause_status(ci) {
                    ClauseStatus::Conflict => return Err(()),
                    ClauseStatus::Unit(l) => {
                        self.assign_lit(l);
                        implied.push(l);
                        progressed = true;
                    }
                    _ => {}
                }
            }
            if !progressed {
                return Ok(implied);
            }
        }
    }

    /// Compiles the sub-formula given by `clause_ids` under the current
    /// assignment.
    fn solve(&mut self, clause_ids: &[u32]) -> NnfId {
        let mark = self.trail.len();
        let Ok(implied) = self.bcp(clause_ids) else {
            self.undo_to(mark);
            return self.builder.false_id();
        };
        let mut conjuncts: Vec<NnfId> = implied.iter().map(|&l| self.builder.lit(l)).collect();

        let active: Vec<u32> = clause_ids
            .iter()
            .copied()
            .filter(|&ci| matches!(self.clause_status(ci), ClauseStatus::Open))
            .collect();

        if active.is_empty() {
            let result = self.builder.and(conjuncts);
            self.undo_to(mark);
            return result;
        }

        for comp in self.components(&active) {
            let key = if self.use_cache {
                Some(self.cache_key(&comp))
            } else {
                None
            };
            if let Some(k) = &key {
                if let Some(&hit) = self.cache.get(k.as_ref()) {
                    self.stats.cache_hits += 1;
                    conjuncts.push(hit);
                    continue;
                }
            }
            self.stats.components += 1;
            let id = self.branch(&comp);
            if let Some(k) = key {
                self.cache.insert(k, id);
            }
            if id == self.builder.false_id() {
                self.undo_to(mark);
                return self.builder.false_id();
            }
            conjuncts.push(id);
        }
        let result = self.builder.and(conjuncts);
        self.undo_to(mark);
        result
    }

    /// Decides the lowest-rank unassigned variable of the component and
    /// recurses into both phases.
    fn branch(&mut self, comp: &[u32]) -> NnfId {
        let v = comp
            .iter()
            .flat_map(|&ci| self.clauses[ci as usize].iter())
            .filter(|&&l| self.lit_value(l) == 0)
            .map(|&l| lit_var(l))
            .min_by_key(|&v| self.ranks[v as usize])
            .expect("open component has unassigned variables");
        self.stats.decisions += 1;

        let mut branches: Vec<NnfId> = Vec::with_capacity(2);
        for phase in [true, false] {
            let lit = if phase { v as Lit } else { -(v as Lit) };
            let mark = self.trail.len();
            self.assign_lit(lit);
            let sub = self.solve(comp);
            self.undo_to(mark);
            let lit_node = self.builder.lit(lit);
            branches.push(self.builder.and([lit_node, sub]));
        }
        self.builder.or(branches[0], branches[1])
    }

    /// Variable-disjoint components of the active clauses (union-find over
    /// unassigned variables).
    fn components(&self, active: &[u32]) -> Vec<Vec<u32>> {
        let mut parent: HashMap<u32, u32> = HashMap::new();
        fn find(parent: &mut HashMap<u32, u32>, x: u32) -> u32 {
            let p = *parent.entry(x).or_insert(x);
            if p == x {
                x
            } else {
                let r = find(parent, p);
                parent.insert(x, r);
                r
            }
        }
        for &ci in active {
            let mut prev: Option<u32> = None;
            for &l in &self.clauses[ci as usize] {
                if self.lit_value(l) != 0 {
                    continue;
                }
                let v = lit_var(l);
                if let Some(p) = prev {
                    let (ra, rb) = (find(&mut parent, p), find(&mut parent, v));
                    if ra != rb {
                        parent.insert(ra, rb);
                    }
                }
                prev = Some(v);
            }
        }
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for &ci in active {
            let rep = self.clauses[ci as usize]
                .iter()
                .find(|&&l| self.lit_value(l) == 0)
                .map(|&l| find(&mut parent, lit_var(l)))
                .expect("open clause has an unassigned literal");
            groups.entry(rep).or_default().push(ci);
        }
        let mut comps: Vec<Vec<u32>> = groups.into_values().collect();
        // Deterministic order (smallest clause id first) for reproducible
        // circuits and cache behaviour.
        comps.sort_by_key(|c| c[0]);
        comps
    }

    /// Cache key: sorted active clause ids plus the component's unassigned
    /// variables. Residual clauses are fully determined by this pair (an
    /// assigned variable inside an active clause is always falsified).
    fn cache_key(&self, comp: &[u32]) -> Box<[u32]> {
        let mut key: Vec<u32> = comp.to_vec();
        key.sort_unstable();
        let mut vars: Vec<u32> = comp
            .iter()
            .flat_map(|&ci| self.clauses[ci as usize].iter())
            .filter(|&&l| self.lit_value(l) == 0)
            .map(|&l| lit_var(l))
            .collect();
        vars.sort_unstable();
        vars.dedup();
        key.push(u32::MAX); // separator
        key.extend(vars);
        key.into_boxed_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{evaluate, AcWeights};
    use qkc_math::{Complex, C_ONE};

    /// Unweighted model count via the compiled circuit. Toy formulas (unlike
    /// circuit encodings) can leave variables branch-locally free, so we
    /// smooth over every variable before counting.
    fn model_count(cnf: &Cnf, options: &CompileOptions) -> f64 {
        let compiled = compile(cnf, options);
        let groups: Vec<Vec<Lit>> = (1..=cnf.num_vars() as i32).map(|v| vec![v, -v]).collect();
        let smoothed = crate::transform::smooth(&compiled.nnf, &groups);
        let weights = AcWeights::uniform(cnf.num_vars());
        evaluate(&smoothed, &weights).re
    }

    fn brute_force_count(cnf: &Cnf) -> f64 {
        let n = cnf.num_vars();
        let mut count = 0u64;
        for mask in 0..1u64 << n {
            let a: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            if cnf.is_satisfied_by(&a) {
                count += 1;
            }
        }
        count as f64
    }

    fn check_count(cnf: &Cnf) {
        let want = brute_force_count(cnf);
        for order in [VarOrder::Lexicographic, VarOrder::MinCutSeparator] {
            for cache in [true, false] {
                let got = model_count(
                    cnf,
                    &CompileOptions {
                        order,
                        cache,
                        ..Default::default()
                    },
                );
                assert!(
                    (got - want).abs() < 1e-6,
                    "order {order:?} cache {cache}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn counts_simple_formulas() {
        let mut f = Cnf::new(2);
        f.add_clause(vec![1, 2]);
        check_count(&f); // 3 models

        let mut g = Cnf::new(3);
        g.add_clause(vec![1, 2]);
        g.add_clause(vec![-2, 3]);
        check_count(&g);

        let mut h = Cnf::new(4);
        h.add_clause(vec![1, 2]);
        h.add_clause(vec![3, 4]);
        h.add_clause(vec![-1, -3]);
        check_count(&h);
    }

    #[test]
    fn counts_xor_chain() {
        // XOR chains are the hard case for naive enumeration but have
        // compact d-DNNFs under a good order.
        let n = 8;
        let mut f = Cnf::new(n);
        for v in 1..n as i32 {
            f.add_clause(vec![v, v + 1]);
            f.add_clause(vec![-v, -(v + 1)]);
        }
        check_count(&f); // exactly 2 models
    }

    #[test]
    fn unsatisfiable_formula_compiles_to_false() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![1]);
        f.add_clause(vec![-1]);
        let c = compile(&f, &CompileOptions::default());
        let w = AcWeights::uniform(1);
        assert_eq!(evaluate(&c.nnf, &w), qkc_math::C_ZERO);
    }

    #[test]
    fn weighted_count_with_complex_weights() {
        // f = (v1) ∧ (v2 ∨ v3): WMC = w(+1)·[w(+2)w(+3)+w(+2)w(-3)+w(-2)w(+3)]
        let mut f = Cnf::new(3);
        f.add_clause(vec![1]);
        f.add_clause(vec![2, 3]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<Lit>> = (1..=3).map(|v| vec![v, -v]).collect();
        let nnf = crate::transform::smooth(&c.nnf, &groups);
        let mut w = AcWeights::uniform(3);
        w.set(1, Complex::imag(1.0), C_ONE);
        w.set(2, Complex::real(0.5), C_ONE);
        w.set(3, Complex::real(2.0), Complex::real(3.0));
        // models over (2,3): (T,T)=1.0, (T,F)=1.5, (F,T)=2.0 → 4.5 · i
        let got = evaluate(&nnf, &w);
        assert!(got.approx_eq(Complex::imag(4.5), 1e-12));
    }

    #[test]
    fn cache_hits_on_repeated_structure() {
        // Two independent identical sub-formulas over different variables
        // do NOT share cache entries (different vars), but a chain revisited
        // under equal assignments does. Check the machinery runs and both
        // orders agree on a medium formula.
        let n = 12;
        let mut f = Cnf::new(n);
        for v in 1..n as i32 {
            f.add_clause(vec![-v, v + 1]);
        }
        f.add_clause(vec![1, -(n as i32)]);
        check_count(&f);
        let c = compile(&f, &CompileOptions::default());
        assert!(c.stats.decisions > 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn random_3cnf_counts_match_brute_force(
            seed_clauses in proptest::collection::vec(
                (1u32..8, 1u32..8, 1u32..8, proptest::bits::u8::ANY),
                1..14,
            ),
        ) {
            let mut f = Cnf::new(8);
            for (a, b, c, signs) in seed_clauses {
                let mut clause: Vec<Lit> = Vec::new();
                for (i, v) in [a, b, c].into_iter().enumerate() {
                    let l = if (signs >> i) & 1 == 1 { v as Lit } else { -(v as Lit) };
                    if !clause.contains(&l) && !clause.contains(&-l) {
                        clause.push(l);
                    }
                }
                if !clause.is_empty() {
                    f.add_clause(clause);
                }
            }
            let want = brute_force_count(&f);
            if want == 0.0 {
                // UNSAT: circuit must evaluate to 0.
                let c = compile(&f, &CompileOptions::default());
                let w = AcWeights::uniform(8);
                proptest::prop_assert!(evaluate(&c.nnf, &w).approx_zero(1e-9));
            } else {
                check_count(&f);
            }
        }
    }
}
