//! Lane-blocked split-plane storage for batched kernels.
//!
//! A [`LaneBlock`] holds `W` complex lanes as two parallel `[f64; W]`
//! planes (separate real and imaginary arrays). Every per-lane operation
//! is a fixed-trip loop over `W`, so the compiler unrolls it completely
//! and autovectorizes the body — no gather/scatter, no interleaved
//! real/imaginary shuffles, entirely in safe Rust.
//!
//! # Bit-exactness contract
//!
//! Each lane of every operation performs *exactly* the scalar
//! [`Complex`] arithmetic sequence — the same multiply formula
//! (`re·re − im·im`, `re·im + im·re`), the same componentwise adds, and
//! the same zero tests (`re == 0.0 && im == 0.0`, matching `Complex`'s
//! derived `PartialEq` against [`C_ZERO`]) — so a blocked kernel built
//! from these ops is bit-for-bit identical to its scalar reference.
//! Nothing here is allowed to fuse a multiply-add: rustc never contracts
//! float expressions into FMA on its own, and keeping the two roundings
//! separate is what makes the SIMD path produce the scalar bits.
//!
//! Short-circuits become per-lane *selects*: where the scalar kernel
//! branches on a zero accumulator, the lane op computes the product
//! unconditionally and keeps the old bits in lanes that were zero. A
//! select preserves the exact bit pattern a taken branch would have
//! left, and compiles to a blend instead of a branch.
//!
//! Ragged batches (`k` not a multiple of `W`) occupy `⌈k/W⌉` blocks;
//! the trailing block's dead lanes are zero-filled by the weight
//! containers and simply computed alongside live lanes (masked
//! remainder). Dead lanes are deterministic functions of those zeros,
//! which keeps whole-block bitwise comparisons (delta kernels) sound.

use qkc_math::{Complex, C_ONE};

/// Native lane width of the blocked kernels: 8 × f64 per plane fills one
/// 512-bit vector register (or two 256-bit ones) per plane.
pub const LANE_WIDTH: usize = 8;

/// Number of [`LaneBlock`]s needed to hold `lanes` complex lanes.
#[inline]
pub fn blocks_for(lanes: usize) -> usize {
    lanes.div_ceil(LANE_WIDTH)
}

/// `W` complex lanes in split-plane layout: `re[w] + i·im[w]` is lane `w`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct LaneBlock<const W: usize = LANE_WIDTH> {
    /// Real plane.
    pub re: [f64; W],
    /// Imaginary plane.
    pub im: [f64; W],
}

impl<const W: usize> LaneBlock<W> {
    /// All lanes `0 + 0i`.
    pub const ZERO: Self = Self {
        re: [0.0; W],
        im: [0.0; W],
    };

    /// All lanes `1 + 0i`.
    pub const ONE: Self = Self {
        re: [1.0; W],
        im: [0.0; W],
    };

    /// All lanes set to `c`.
    #[inline(always)]
    pub fn splat(c: Complex) -> Self {
        Self {
            re: [c.re; W],
            im: [c.im; W],
        }
    }

    /// Lane `w` as a [`Complex`].
    #[inline(always)]
    pub fn get(&self, w: usize) -> Complex {
        Complex::new(self.re[w], self.im[w])
    }

    /// Sets lane `w`.
    #[inline(always)]
    pub fn set(&mut self, w: usize, c: Complex) {
        self.re[w] = c.re;
        self.im[w] = c.im;
    }

    /// `C_ONE * v` per lane — the full multiply by exact one, *not* a
    /// copy: `1·re − 0·im` can flip the sign of a zero, and the scalar
    /// kernels (`acc = C_ONE * v`) observe those bits.
    #[inline(always)]
    pub fn one_times(v: &Self) -> Self {
        let mut out = Self::ZERO;
        for w in 0..W {
            out.re[w] = C_ONE.re * v.re[w] - C_ONE.im * v.im[w];
            out.im[w] = C_ONE.re * v.im[w] + C_ONE.im * v.re[w];
        }
        out
    }

    /// `self * rhs` per lane (scalar `Complex::mul` formula).
    #[inline(always)]
    pub fn mul(&self, rhs: &Self) -> Self {
        let mut out = Self::ZERO;
        for w in 0..W {
            out.re[w] = self.re[w] * rhs.re[w] - self.im[w] * rhs.im[w];
            out.im[w] = self.re[w] * rhs.im[w] + self.im[w] * rhs.re[w];
        }
        out
    }

    /// `self *= rhs` per lane, unconditionally (full-product AND sweeps).
    #[inline(always)]
    pub fn mul_assign(&mut self, rhs: &Self) {
        for w in 0..W {
            let re = self.re[w] * rhs.re[w] - self.im[w] * rhs.im[w];
            let im = self.re[w] * rhs.im[w] + self.im[w] * rhs.re[w];
            self.re[w] = re;
            self.im[w] = im;
        }
    }

    /// `self *= rhs` in lanes where `self` is nonzero; zero lanes keep
    /// their bits. This is the scalar AND short-circuit
    /// (`if acc != C_ZERO { acc *= v }`) as a branchless select.
    #[inline(always)]
    pub fn mul_assign_sc(&mut self, rhs: &Self) {
        for w in 0..W {
            let dead = self.re[w] == 0.0 && self.im[w] == 0.0;
            let re = self.re[w] * rhs.re[w] - self.im[w] * rhs.im[w];
            let im = self.re[w] * rhs.im[w] + self.im[w] * rhs.re[w];
            self.re[w] = if dead { self.re[w] } else { re };
            self.im[w] = if dead { self.im[w] } else { im };
        }
    }

    /// `self = a + b` per lane.
    #[inline(always)]
    pub fn add_of(&mut self, a: &Self, b: &Self) {
        for w in 0..W {
            self.re[w] = a.re[w] + b.re[w];
            self.im[w] = a.im[w] + b.im[w];
        }
    }

    /// `self += rhs` per lane.
    #[inline(always)]
    pub fn add_assign(&mut self, rhs: &Self) {
        for w in 0..W {
            self.re[w] += rhs.re[w];
            self.im[w] += rhs.im[w];
        }
    }

    /// `self += a * b` per lane, unconditionally. The product and the
    /// add round separately (two ops, never an FMA).
    #[inline(always)]
    pub fn add_mul(&mut self, a: &Self, b: &Self) {
        for w in 0..W {
            let re = a.re[w] * b.re[w] - a.im[w] * b.im[w];
            let im = a.re[w] * b.im[w] + a.im[w] * b.re[w];
            self.re[w] += re;
            self.im[w] += im;
        }
    }

    /// `self += a * b` in lanes where `p` is nonzero (the downward AND
    /// pass's per-lane zero-partial skip, as a select).
    #[inline(always)]
    pub fn add_mul_where(&mut self, p: &Self, a: &Self, b: &Self) {
        for w in 0..W {
            let skip = p.re[w] == 0.0 && p.im[w] == 0.0;
            let re = self.re[w] + (a.re[w] * b.re[w] - a.im[w] * b.im[w]);
            let im = self.im[w] + (a.re[w] * b.im[w] + a.im[w] * b.re[w]);
            self.re[w] = if skip { self.re[w] } else { re };
            self.im[w] = if skip { self.im[w] } else { im };
        }
    }

    /// `self += p` in lanes where `p` is nonzero (the downward OR pass's
    /// per-lane zero-partial skip, as a select).
    #[inline(always)]
    pub fn add_where_nonzero(&mut self, p: &Self) {
        for w in 0..W {
            let skip = p.re[w] == 0.0 && p.im[w] == 0.0;
            let re = self.re[w] + p.re[w];
            let im = self.im[w] + p.im[w];
            self.re[w] = if skip { self.re[w] } else { re };
            self.im[w] = if skip { self.im[w] } else { im };
        }
    }

    /// Whether every lane is numerically zero (`== C_ZERO`; sign of zero
    /// is ignored, matching the scalar comparison).
    #[inline(always)]
    pub fn all_zero(&self) -> bool {
        let mut zero = true;
        for w in 0..W {
            zero &= self.re[w] == 0.0 && self.im[w] == 0.0;
        }
        zero
    }

    /// Whether any lane differs from `other` *bitwise* (distinguishes
    /// `-0.0` from `0.0` and compares NaNs by payload) — the comparison
    /// the delta kernels use to detect a changed row.
    #[inline(always)]
    pub fn bits_ne(&self, other: &Self) -> bool {
        let mut ne = false;
        for w in 0..W {
            ne |= self.re[w].to_bits() != other.re[w].to_bits()
                || self.im[w].to_bits() != other.im[w].to_bits();
        }
        ne
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_math::{C_ONE, C_ZERO};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bits_eq(a: Complex, b: Complex) -> bool {
        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
    }

    fn random_block(rng: &mut StdRng) -> LaneBlock {
        let mut b = LaneBlock::ZERO;
        for w in 0..LANE_WIDTH {
            // Mix in exact zeros of both signs so the zero-select paths
            // and sign-of-zero propagation are exercised.
            let c = match rng.gen_range(0..5) {
                0 => C_ZERO,
                1 => Complex::new(-0.0, 0.0),
                2 => Complex::new(0.0, -0.0),
                _ => Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
            };
            b.set(w, c);
        }
        b
    }

    #[test]
    fn ops_match_scalar_complex_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a = random_block(&mut rng);
            let b = random_block(&mut rng);
            let p = random_block(&mut rng);
            let acc0 = random_block(&mut rng);

            let m = a.mul(&b);
            let ot = LaneBlock::one_times(&a);
            let mut ma = a;
            ma.mul_assign(&b);
            let mut sc = a;
            sc.mul_assign_sc(&b);
            let mut sum = LaneBlock::ZERO;
            sum.add_of(&a, &b);
            let mut aa = acc0;
            aa.add_assign(&b);
            let mut am = acc0;
            am.add_mul(&a, &b);
            let mut amw = acc0;
            amw.add_mul_where(&p, &a, &b);
            let mut awn = acc0;
            awn.add_where_nonzero(&p);

            for w in 0..LANE_WIDTH {
                let (x, y, pp, z) = (a.get(w), b.get(w), p.get(w), acc0.get(w));
                assert!(bits_eq(m.get(w), x * y));
                assert!(bits_eq(ot.get(w), C_ONE * x));
                assert!(bits_eq(ma.get(w), x * y));
                let want_sc = if x != C_ZERO { x * y } else { x };
                assert!(bits_eq(sc.get(w), want_sc));
                assert!(bits_eq(sum.get(w), x + y));
                assert!(bits_eq(aa.get(w), z + y));
                assert!(bits_eq(am.get(w), z + x * y));
                let want_amw = if pp != C_ZERO { z + x * y } else { z };
                assert!(bits_eq(amw.get(w), want_amw));
                let want_awn = if pp != C_ZERO { z + pp } else { z };
                assert!(bits_eq(awn.get(w), want_awn));
            }
        }
    }

    #[test]
    fn zero_predicates() {
        assert!(LaneBlock::<8>::ZERO.all_zero());
        let mut b = LaneBlock::<8>::ZERO;
        b.set(3, Complex::new(-0.0, 0.0));
        // -0.0 == 0.0 numerically: still all-zero…
        assert!(b.all_zero());
        // …but bitwise different from the +0.0 block.
        assert!(b.bits_ne(&LaneBlock::ZERO));
        b.set(3, Complex::real(1.0));
        assert!(!b.all_zero());
        assert!(!LaneBlock::<8>::ONE.bits_ne(&LaneBlock::ONE));
    }

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(blocks_for(0), 0);
        assert_eq!(blocks_for(1), 1);
        assert_eq!(blocks_for(LANE_WIDTH), 1);
        assert_eq!(blocks_for(LANE_WIDTH + 1), 2);
        assert_eq!(blocks_for(2 * LANE_WIDTH + 3), 3);
    }
}
