//! Certifying static verifier for compiled artifacts.
//!
//! Weighted model counting over an [`AcTape`] is only *sound* if the
//! compiled circuit really is a well-formed d-DNNF: products must be
//! decomposable (children over disjoint variables), sums deterministic
//! (mutually exclusive branches), and the circuit smooth over every query
//! variable group — properties [`crate::nnf`] calls "the producer's
//! contract". Artifacts now arrive from three producers (fresh compile,
//! wire decode, cache rehydration from a spill directory that fault
//! injection proved can be torn or hostile), so this module checks the
//! contract instead of assuming it: a multi-pass analyzer over the tape IR
//! that emits a structured [`VerifyReport`] of per-finding pass, severity,
//! slot, and message.
//!
//! # Passes
//!
//! * [`VerifyPass::TapeWellFormed`] — topological instruction order, CSR
//!   child-buffer bounds and arity, root reachability, no dead
//!   instructions (the pruning contract), sorted/unique in-bounds
//!   literal→slot table, in-bounds constant pool, no non-finite constants.
//!   These are exactly the checks [`AcTape::from_bytes`] enforces (it
//!   delegates to [`structural_violations`], so decode hardening and
//!   verification cannot drift).
//! * [`VerifyPass::Decomposability`] — every product's children carry
//!   pairwise-disjoint variable sets (one bottom-up interned-bitset pass).
//! * [`VerifyPass::Determinism`] — every sum exhibits a syntactic
//!   mutual-exclusion witness: a conflicting decision literal between its
//!   branches, or two distinct indicators of one exactly-one query group.
//!   Sums with no witness (projection sums, smoothing-gadget chains) are
//!   reported [`Severity::Unverified`], never silently passed.
//! * [`VerifyPass::Smoothness`] — both children of every sum mention the
//!   same query variable groups, and the root mentions all of them
//!   (the property [`crate::smooth`] establishes; required for evidence
//!   conditioning by weight-clamping to be exact).
//! * [`VerifyPass::SlotLiveness`] — weight-slot coverage: slots never read
//!   by any literal instruction are reported, and
//!   [`verify_tangent_plan`] checks a [`TangentPlan`]'s slot references
//!   against the tape.
//!
//! # Severity model
//!
//! [`Severity::Error`] findings mean the artifact must not be trusted
//! (structural corruption, non-decomposable product, unsmooth sum).
//! [`Severity::Warning`] marks suspicious-but-sound shapes (dead weight
//! slots, model-layer tolerance drift). [`Severity::Unverified`] marks
//! properties the syntactic analysis could not certify either way.
//! [`VerifyReport::is_clean`] is "no errors" — warnings and unverified
//! findings do not fail an artifact.

use crate::evaluate::AcWeights;
use crate::tape::{
    AcTape, TangentPlan, TangentPlanBatch, TapeDecodeError, TapeId, TapeOp, TapeOpKind,
};
use qkc_cnf::Lit;
use qkc_math::Complex;
use std::collections::HashMap;
use std::time::Instant;

/// How much of the analyzer to run.
///
/// Levels are ordered: each level includes everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyLevel {
    /// Run nothing; [`verify_tape`] returns an empty report.
    Off,
    /// Tape well-formedness only — the checks decode already enforces.
    Structural,
    /// All passes: structural plus semantic d-DNNF certification and slot
    /// liveness.
    Full,
}

impl Default for VerifyLevel {
    /// [`VerifyLevel::Full`] in debug builds (tests certify every
    /// artifact), [`VerifyLevel::Off`] in release builds (verification
    /// stays off the hot path).
    fn default() -> Self {
        if cfg!(debug_assertions) {
            VerifyLevel::Full
        } else {
            VerifyLevel::Off
        }
    }
}

/// The analyzer pass that produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyPass {
    /// Structural tape IR checks (shared with [`AcTape::from_bytes`]).
    TapeWellFormed,
    /// Pairwise-disjoint product children.
    Decomposability,
    /// Syntactic mutual-exclusion witnesses at sums.
    Determinism,
    /// Equal query-group coverage across sum children; full coverage at
    /// the root.
    Smoothness,
    /// Weight-slot coverage and tangent-plan reference validity.
    SlotLiveness,
    /// Model-layer lints at the bayesnet/circuit boundary (CPT
    /// row-stochasticity, unitarity within tolerance). Emitted by
    /// `qkc_core`, which owns the model layer.
    ModelLints,
}

impl VerifyPass {
    /// Stable snake_case pass name (used in reports and telemetry paths).
    pub fn name(self) -> &'static str {
        match self {
            VerifyPass::TapeWellFormed => "tape_well_formed",
            VerifyPass::Decomposability => "decomposability",
            VerifyPass::Determinism => "determinism",
            VerifyPass::Smoothness => "smoothness",
            VerifyPass::SlotLiveness => "slot_liveness",
            VerifyPass::ModelLints => "model_lints",
        }
    }
}

impl std::fmt::Display for VerifyPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a finding is. Ordered: `Unverified < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The analysis could not certify the property either way.
    Unverified,
    /// Suspicious but sound; the artifact may still be trusted.
    Warning,
    /// The artifact violates an invariant and must not be trusted.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Unverified => "unverified",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One analyzer finding: which pass fired, how severe, where, and why.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pass that produced this finding.
    pub pass: VerifyPass,
    /// How bad it is.
    pub severity: Severity,
    /// The tape slot (instruction index) the finding anchors to, when it
    /// concerns one instruction rather than the artifact as a whole.
    pub slot: Option<TapeId>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.slot {
            Some(s) => write!(
                f,
                "[{}] {} @ slot {s}: {}",
                self.severity, self.pass, self.message
            ),
            None => write!(f, "[{}] {}: {}", self.severity, self.pass, self.message),
        }
    }
}

/// The structured result of a verification run: every finding plus
/// per-pass latencies.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    findings: Vec<Finding>,
    pass_seconds: Vec<(VerifyPass, f64)>,
    level: VerifyLevel,
}

impl VerifyReport {
    /// An empty report for the given level.
    pub fn new(level: VerifyLevel) -> Self {
        Self {
            findings: Vec::new(),
            pass_seconds: Vec::new(),
            level,
        }
    }

    /// The level this report was produced at.
    pub fn level(&self) -> VerifyLevel {
        self.level
    }

    /// All findings, in pass order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Per-pass wall-clock latencies, in run order.
    pub fn pass_seconds(&self) -> &[(VerifyPass, f64)] {
        &self.pass_seconds
    }

    /// Appends a finding (used by the model-layer lints in `qkc_core`).
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Records a pass latency. A pass that runs in stages (the model
    /// lints time their shape and stochasticity legs separately)
    /// accumulates into one entry.
    pub fn record_pass(&mut self, pass: VerifyPass, seconds: f64) {
        if let Some(entry) = self.pass_seconds.iter_mut().find(|(p, _)| *p == pass) {
            entry.1 += seconds;
        } else {
            self.pass_seconds.push((pass, seconds));
        }
    }

    /// Number of findings at exactly the given severity.
    pub fn count_at(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// True when no finding is an [`Severity::Error`]: the artifact may be
    /// trusted. Warnings and unverified findings do not fail an artifact.
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Error)
    }

    /// Renders the report as human-readable text (one finding per line,
    /// then pass latencies).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verify: {} error(s), {} warning(s), {} unverified",
            self.count_at(Severity::Error),
            self.count_at(Severity::Warning),
            self.count_at(Severity::Unverified),
        );
        for f in &self.findings {
            let _ = writeln!(out, "  {f}");
        }
        for &(pass, secs) in &self.pass_seconds {
            let _ = writeln!(out, "  pass {pass}: {:.1} us", secs * 1e6);
        }
        out
    }
}

/// One structural invariant violation, in the shared form both
/// [`AcTape::from_bytes`] (which rejects on the first) and the verifier
/// (which reports all) consume.
pub(crate) struct Violation {
    pub(crate) slot: Option<TapeId>,
    pub(crate) what: &'static str,
}

/// The tape well-formedness pass over raw tape sections: the single source
/// of truth for every structural invariant the kernels rely on. Checks run
/// in the historical decode order, so `from_bytes` keeps rejecting a given
/// corruption with the same message it always has; the appended hardening
/// checks (arity, finite constants, dead instructions) only fire on
/// payloads the legacy checks accepted.
pub(crate) fn structural_violations(
    ops: &[TapeOp],
    edges: &[TapeId],
    consts: &[Complex],
    lit_slots: &[(Lit, TapeId)],
    root: TapeId,
    weight_slots: u32,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |slot: Option<TapeId>, what: &'static str| {
        out.push(Violation { slot, what });
    };
    if root as usize >= ops.len() {
        push(None, "root out of range");
    }
    let mut lit_ops = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let slot = i as TapeId;
        match op.kind {
            TapeOpKind::Const => {
                if op.a as usize >= consts.len() {
                    push(Some(slot), "constant index out of range");
                }
            }
            TapeOpKind::Lit => {
                lit_ops += 1;
                if op.a >= weight_slots {
                    push(Some(slot), "weight slot out of range");
                }
                let lit = op.b as i32;
                if lit == 0 || lit == i32::MIN {
                    push(Some(slot), "invalid literal");
                } else if AcWeights::slot_of(lit) != op.a {
                    push(Some(slot), "literal/slot mismatch");
                }
            }
            TapeOpKind::And2 | TapeOpKind::Or => {
                if op.a as usize >= i || op.b as usize >= i {
                    push(Some(slot), "child after parent");
                }
            }
            TapeOpKind::And => {
                let (lo, hi) = (op.a as usize, op.b as usize);
                if lo > hi || hi > edges.len() {
                    push(Some(slot), "edge range out of bounds");
                } else {
                    if edges[lo..hi].iter().any(|&c| c as usize >= i) {
                        push(Some(slot), "child after parent");
                    }
                    // Lowering emits the dedicated two-child opcode for
                    // binary products, so a general product always has at
                    // least three children; fewer means the stream was not
                    // produced by the lowering.
                    if hi - lo < 2 {
                        push(Some(slot), "degenerate and arity");
                    }
                }
            }
        }
    }
    if lit_slots.len() != lit_ops {
        push(None, "literal table size mismatch");
    }
    for (i, &(lit, slot)) in lit_slots.iter().enumerate() {
        if i > 0 && lit_slots[i - 1].0 >= lit {
            push(None, "literal table unsorted");
        }
        match ops.get(slot as usize) {
            None => push(Some(slot), "literal slot out of range"),
            Some(op) => {
                if op.kind != TapeOpKind::Lit || op.b as i32 != lit {
                    push(Some(slot), "literal table points astray");
                }
            }
        }
    }
    for c in consts {
        if !c.re.is_finite() || !c.im.is_finite() {
            push(None, "non-finite constant");
        }
    }
    // Root reachability / no dead instructions (the pruning contract).
    // Only meaningful once every child reference is known in-bounds.
    if out.is_empty() && !ops.is_empty() {
        let mut live = vec![false; ops.len()];
        live[root as usize] = true;
        for (i, op) in ops.iter().enumerate().rev() {
            if !live[i] {
                continue;
            }
            match op.kind {
                TapeOpKind::And2 | TapeOpKind::Or => {
                    live[op.a as usize] = true;
                    live[op.b as usize] = true;
                }
                TapeOpKind::And => {
                    for &c in &edges[op.a as usize..op.b as usize] {
                        live[c as usize] = true;
                    }
                }
                TapeOpKind::Const | TapeOpKind::Lit => {}
            }
        }
        for (i, &l) in live.iter().enumerate() {
            if !l {
                out.push(Violation {
                    slot: Some(i as TapeId),
                    what: "dead instruction",
                });
            }
        }
    }
    out
}

/// Interning pool for fixed-width bitsets: the bottom-up semantic passes
/// attach one set per tape slot, and structurally shared subcircuits share
/// the interned set, so memory stays proportional to the number of
/// *distinct* sets.
struct SetPool {
    blocks: usize,
    sets: Vec<Box<[u64]>>,
    index: HashMap<Box<[u64]>, u32>,
}

impl SetPool {
    fn new(blocks: usize) -> Self {
        let empty: Box<[u64]> = vec![0u64; blocks].into_boxed_slice();
        let mut index = HashMap::new();
        index.insert(empty.clone(), 0);
        Self {
            blocks,
            sets: vec![empty],
            index,
        }
    }

    const EMPTY: u32 = 0;

    fn get(&self, id: u32) -> &[u64] {
        &self.sets[id as usize]
    }

    fn intern(&mut self, set: Box<[u64]>) -> u32 {
        if let Some(&id) = self.index.get(&set) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.sets.push(set.clone());
        self.index.insert(set, id);
        id
    }

    fn singleton(&mut self, bit: u32) -> u32 {
        let mut set = vec![0u64; self.blocks].into_boxed_slice();
        set[bit as usize / 64] |= 1u64 << (bit % 64);
        self.intern(set)
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        if a == b || b == Self::EMPTY {
            return a;
        }
        if a == Self::EMPTY {
            return b;
        }
        let mut set: Box<[u64]> = self.sets[a as usize].clone();
        for (o, &x) in set.iter_mut().zip(self.sets[b as usize].iter()) {
            *o |= x;
        }
        self.intern(set)
    }

    fn disjoint(&self, a: u32, b: u32) -> bool {
        self.sets[a as usize]
            .iter()
            .zip(self.sets[b as usize].iter())
            .all(|(&x, &y)| x & y == 0)
    }
}

/// Decomposability: every product's children carry pairwise-disjoint
/// variable sets. One bottom-up pass; the per-slot variable set is the
/// union of the children's sets, so checking each child against the
/// running union checks all pairs.
fn check_decomposability(tape: &AcTape, report: &mut VerifyReport) {
    let max_var = tape
        .lit_slots()
        .iter()
        .map(|&(l, _)| l.unsigned_abs())
        .max()
        .unwrap_or(0);
    let mut pool = SetPool::new(max_var as usize / 64 + 1);
    let ops = tape.ops();
    let edges = tape.edges();
    let mut vars: Vec<u32> = vec![SetPool::EMPTY; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        vars[i] = match op.kind {
            TapeOpKind::Const => SetPool::EMPTY,
            TapeOpKind::Lit => pool.singleton((op.b as i32).unsigned_abs()),
            TapeOpKind::And2 => {
                let (a, b) = (vars[op.a as usize], vars[op.b as usize]);
                if !pool.disjoint(a, b) {
                    report.push(Finding {
                        pass: VerifyPass::Decomposability,
                        severity: Severity::Error,
                        slot: Some(i as TapeId),
                        message: "product children share variables".to_string(),
                    });
                }
                pool.union(a, b)
            }
            TapeOpKind::And => {
                let mut acc = SetPool::EMPTY;
                for &c in &edges[op.a as usize..op.b as usize] {
                    let cv = vars[c as usize];
                    if !pool.disjoint(acc, cv) {
                        report.push(Finding {
                            pass: VerifyPass::Decomposability,
                            severity: Severity::Error,
                            slot: Some(i as TapeId),
                            message: "product children share variables".to_string(),
                        });
                        // One finding per product is enough signal.
                        acc = pool.union(acc, cv);
                        continue;
                    }
                    acc = pool.union(acc, cv);
                }
                acc
            }
            TapeOpKind::Or => pool.union(vars[op.a as usize], vars[op.b as usize]),
        };
    }
}

/// Sentinel asserted-literal set id for a contradictory node (a folded
/// zero constant): it asserts everything, so it never defeats a witness.
const CONTRADICTION: u32 = u32::MAX;

/// Determinism: each sum must exhibit a syntactic mutual-exclusion
/// witness. Per slot we compute the set of literals *asserted* by the
/// node — literals every model of the subcircuit satisfies — as bitsets
/// indexed by [`AcWeights::slot_of`] (the two polarities of a variable sit
/// in adjacent bits, so a branch conflict is one masked shift-and per
/// block). A sum is witnessed when its branches assert opposite polarities
/// of some literal, when one branch is contradictory, or when the branches
/// assert distinct indicators of the same exactly-one query group. Sums
/// with no witness are aggregated into one [`Severity::Unverified`]
/// finding — projection sums (`Or(a, a)`) and smoothing-gadget chains are
/// deliberately witness-free.
fn check_determinism(tape: &AcTape, groups: &[Vec<Lit>], report: &mut VerifyReport) {
    let blocks = tape.required_weight_slots() as usize / 64 + 1;
    let mut pool = SetPool::new(blocks);
    // Per-group masks over the same slot indexing: a branch pair is
    // disjoint when both assert a lit of the group and jointly assert two
    // distinct ones (exactly-one semantics).
    let group_masks: Vec<Box<[u64]>> = groups
        .iter()
        .map(|g| {
            let mut m = vec![0u64; blocks].into_boxed_slice();
            for &l in g {
                let s = AcWeights::slot_of(l);
                m[s as usize / 64] |= 1u64 << (s % 64);
            }
            m
        })
        .collect();
    const EVEN: u64 = 0x5555_5555_5555_5555;
    let ops = tape.ops();
    let edges = tape.edges();
    let consts = tape.consts();
    let mut asserted: Vec<u32> = vec![SetPool::EMPTY; ops.len()];
    let mut unwitnessed = 0usize;
    let mut first_unwitnessed: Option<TapeId> = None;
    for (i, op) in ops.iter().enumerate() {
        asserted[i] = match op.kind {
            TapeOpKind::Const => {
                let c = consts[op.a as usize];
                if c == Complex::new(0.0, 0.0) {
                    CONTRADICTION
                } else {
                    SetPool::EMPTY
                }
            }
            TapeOpKind::Lit => pool.singleton(op.a),
            TapeOpKind::And2 => {
                let (a, b) = (asserted[op.a as usize], asserted[op.b as usize]);
                if a == CONTRADICTION || b == CONTRADICTION {
                    CONTRADICTION
                } else {
                    pool.union(a, b)
                }
            }
            TapeOpKind::And => {
                let mut acc = SetPool::EMPTY;
                for &c in &edges[op.a as usize..op.b as usize] {
                    let cv = asserted[c as usize];
                    if cv == CONTRADICTION {
                        acc = CONTRADICTION;
                        break;
                    }
                    acc = pool.union(acc, cv);
                }
                acc
            }
            TapeOpKind::Or => {
                let (a, b) = (asserted[op.a as usize], asserted[op.b as usize]);
                let witnessed = if a == CONTRADICTION || b == CONTRADICTION {
                    // A contradictory branch contributes no models, so the
                    // sum is trivially deterministic.
                    true
                } else if op.a == op.b {
                    // A projection sum (`2·a`): deliberately not
                    // deterministic.
                    false
                } else {
                    let (sa, sb) = (pool.get(a), pool.get(b));
                    // Opposite polarities of one decision literal.
                    let polarity = sa
                        .iter()
                        .zip(sb.iter())
                        .any(|(&x, &y)| ((x >> 1) & y | (y >> 1) & x) & EVEN != 0);
                    polarity
                        || group_masks.iter().any(|m| {
                            let mut any_a = false;
                            let mut any_b = false;
                            let mut joint = 0u32;
                            for ((&x, &y), &gm) in sa.iter().zip(sb.iter()).zip(m.iter()) {
                                let (ga, gb) = (x & gm, y & gm);
                                any_a |= ga != 0;
                                any_b |= gb != 0;
                                joint += (ga | gb).count_ones();
                            }
                            any_a && any_b && joint >= 2
                        })
                };
                if !witnessed {
                    unwitnessed += 1;
                    first_unwitnessed.get_or_insert(i as TapeId);
                }
                // The sum's models satisfy whatever both branches assert.
                if a == CONTRADICTION {
                    b
                } else if b == CONTRADICTION {
                    a
                } else {
                    let set: Box<[u64]> = pool
                        .get(a)
                        .iter()
                        .zip(pool.get(b).iter())
                        .map(|(&x, &y)| x & y)
                        .collect();
                    pool.intern(set)
                }
            }
        };
    }
    if unwitnessed > 0 {
        report.push(Finding {
            pass: VerifyPass::Determinism,
            severity: Severity::Unverified,
            slot: first_unwitnessed,
            message: format!(
                "{unwitnessed} sum node(s) carry no syntactic determinism witness \
                 (projection sums and smoothing gadgets are expected here)"
            ),
        });
    }
}

/// Smoothness over the query variable groups: both children of every sum
/// must mention the same groups (so evidence clamping sums the same
/// basis on both branches), and the root must mention every group.
fn check_smoothness(tape: &AcTape, groups: &[Vec<Lit>], report: &mut VerifyReport) {
    if groups.is_empty() {
        return;
    }
    let mut group_of: HashMap<u32, u32> = HashMap::new();
    for (g, lits) in groups.iter().enumerate() {
        for &l in lits {
            group_of.insert(l.unsigned_abs(), g as u32);
        }
    }
    let mut pool = SetPool::new((groups.len() - 1) / 64 + 1);
    let ops = tape.ops();
    let edges = tape.edges();
    let mut gsets: Vec<u32> = vec![SetPool::EMPTY; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        gsets[i] = match op.kind {
            TapeOpKind::Const => SetPool::EMPTY,
            TapeOpKind::Lit => match group_of.get(&(op.b as i32).unsigned_abs()) {
                Some(&g) => pool.singleton(g),
                None => SetPool::EMPTY,
            },
            TapeOpKind::And2 => pool.union(gsets[op.a as usize], gsets[op.b as usize]),
            TapeOpKind::And => {
                let mut acc = SetPool::EMPTY;
                for &c in &edges[op.a as usize..op.b as usize] {
                    acc = pool.union(acc, gsets[c as usize]);
                }
                acc
            }
            TapeOpKind::Or => {
                let (a, b) = (gsets[op.a as usize], gsets[op.b as usize]);
                // Interned ids are canonical: distinct id ⇒ distinct set.
                if a != b {
                    report.push(Finding {
                        pass: VerifyPass::Smoothness,
                        severity: Severity::Error,
                        slot: Some(i as TapeId),
                        message: "sum children cover different query groups".to_string(),
                    });
                }
                pool.union(a, b)
            }
        };
    }
    let covered: u32 = pool
        .get(gsets[tape.root() as usize])
        .iter()
        .map(|b| b.count_ones())
        .sum();
    if (covered as usize) < groups.len() {
        report.push(Finding {
            pass: VerifyPass::Smoothness,
            severity: Severity::Error,
            slot: Some(tape.root()),
            message: format!("root covers {covered} of {} query groups", groups.len()),
        });
    }
}

/// Slot liveness: which weight slots the tape actually reads. Dead slots
/// are sound (the kernels simply never load them) but worth surfacing —
/// elided artifacts legitimately carry many, so this is a warning, not an
/// error.
fn check_slot_liveness(tape: &AcTape, report: &mut VerifyReport) {
    let n = tape.required_weight_slots() as usize;
    if n == 0 {
        return;
    }
    let mut read = vec![false; n];
    for op in tape.ops() {
        if op.kind == TapeOpKind::Lit {
            read[op.a as usize] = true;
        }
    }
    let dead = read.iter().filter(|&&r| !r).count();
    if dead > 0 {
        report.push(Finding {
            pass: VerifyPass::SlotLiveness,
            severity: Severity::Warning,
            slot: None,
            message: format!(
                "{dead} of {n} weight slots are never read by a literal instruction \
                 (expected for elided artifacts and unused polarities)"
            ),
        });
    }
}

/// Checks a [`TangentPlan`]'s slot references against a tape: every
/// referenced slot must be a literal instruction (the only slots whose
/// upward value a tangent can perturb).
pub fn verify_tangent_plan(plan: &TangentPlan, tape: &AcTape) -> Vec<Finding> {
    check_plan_slots(plan.slots(), tape)
}

/// [`verify_tangent_plan`] for the lane-blocked [`TangentPlanBatch`]: the
/// same literal-instruction check over the batch plan's kept slots (a slot
/// is kept when any lane's tangent is nonzero, so a bad reference would be
/// contracted in every pass).
pub fn verify_tangent_plan_batch(plan: &TangentPlanBatch, tape: &AcTape) -> Vec<Finding> {
    check_plan_slots(plan.slots(), tape)
}

fn check_plan_slots(slots: impl Iterator<Item = TapeId>, tape: &AcTape) -> Vec<Finding> {
    let ops = tape.ops();
    slots
        .filter(|&s| ops.get(s as usize).map(|op| op.kind) != Some(TapeOpKind::Lit))
        .map(|s| Finding {
            pass: VerifyPass::SlotLiveness,
            severity: Severity::Error,
            slot: Some(s),
            message: "tangent plan references a non-literal slot".to_string(),
        })
        .collect()
}

/// Runs the analyzer over a tape.
///
/// `groups` are the query variable groups the artifact was smoothed over
/// (each inner vec lists the literals of one exactly-one group; a binary
/// variable contributes both polarities). Pass `&[]` when the grouping is
/// unknown — smoothness is then vacuous and determinism loses its
/// group-indicator witness rule, but every other pass still runs.
pub fn verify_tape(tape: &AcTape, groups: &[Vec<Lit>], level: VerifyLevel) -> VerifyReport {
    let mut report = VerifyReport::new(level);
    if level == VerifyLevel::Off {
        return report;
    }
    let t = Instant::now();
    let structural = structural_violations(
        tape.ops(),
        tape.edges(),
        tape.consts(),
        tape.lit_slots(),
        tape.root(),
        tape.required_weight_slots(),
    );
    let sound = structural.is_empty();
    for v in structural {
        report.push(Finding {
            pass: VerifyPass::TapeWellFormed,
            severity: Severity::Error,
            slot: v.slot,
            message: v.what.to_string(),
        });
    }
    report.record_pass(VerifyPass::TapeWellFormed, t.elapsed().as_secs_f64());
    // The semantic passes index children without bounds checks, so they
    // only run over structurally sound tapes.
    if level >= VerifyLevel::Full && sound {
        let t = Instant::now();
        check_decomposability(tape, &mut report);
        report.record_pass(VerifyPass::Decomposability, t.elapsed().as_secs_f64());
        let t = Instant::now();
        check_determinism(tape, groups, &mut report);
        report.record_pass(VerifyPass::Determinism, t.elapsed().as_secs_f64());
        let t = Instant::now();
        check_smoothness(tape, groups, &mut report);
        report.record_pass(VerifyPass::Smoothness, t.elapsed().as_secs_f64());
        let t = Instant::now();
        check_slot_liveness(tape, &mut report);
        report.record_pass(VerifyPass::SlotLiveness, t.elapsed().as_secs_f64());
    }
    report
}

/// Runs the analyzer over a wire payload.
///
/// Envelope failures (bad magic, version skew, truncation, checksum
/// mismatch) are returned as errors — there is no tape to report on.
/// A payload that parses but violates a structural invariant yields an
/// `Ok` report carrying the violation as a [`VerifyPass::TapeWellFormed`]
/// error finding, mirroring what [`AcTape::from_bytes`] rejects.
///
/// # Errors
///
/// Any [`TapeDecodeError`] other than
/// [`TapeDecodeError::Malformed`].
pub fn verify_tape_bytes(
    bytes: &[u8],
    groups: &[Vec<Lit>],
    level: VerifyLevel,
) -> Result<VerifyReport, TapeDecodeError> {
    match AcTape::from_bytes(bytes) {
        Ok(tape) => Ok(verify_tape(&tape, groups, level)),
        Err(TapeDecodeError::Malformed(what)) => {
            let mut report = VerifyReport::new(level);
            report.push(Finding {
                pass: VerifyPass::TapeWellFormed,
                severity: Severity::Error,
                slot: None,
                message: what.to_string(),
            });
            Ok(report)
        }
        Err(e) => Err(e),
    }
}
