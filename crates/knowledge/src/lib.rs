//! Knowledge compilation for quantum circuit simulation — stage 3 of the
//! paper's toolchain (Figure 4, §3.2.2–3.3).
//!
//! A CNF encoding of a noisy quantum circuit is compiled once into a
//! deterministic decomposable circuit ([`Nnf`]) by an exhaustive-DPLL
//! compiler with unit propagation, component decomposition, and component
//! caching ([`compile`]); post-processed by internal-state elision
//! ([`project_out`]) and query-variable smoothing ([`smooth`]); and then
//! evaluated repeatedly as an *arithmetic circuit*: upward for amplitudes
//! ([`evaluate`]), upward+downward for all single-flip amplitudes at once
//! ([`evaluate_with_differentials`]), which drives the [`GibbsSampler`].
//! Parameter sweeps amortize the traversal itself: [`evaluate_batch`] and
//! [`evaluate_with_differentials_batch`] decode each node once and update
//! `k` weight lanes ([`AcWeightsBatch`]) held in lane-blocked split-plane
//! layout ([`lanes`]), bit-for-bit equal to `k` scalar evaluations.
//!
//! Production queries run on the flat execution form: [`AcTape`] lowers the
//! enum arena once into a topologically-ordered instruction stream with CSR
//! child storage, and [`TapeEvaluator`] runs every kernel (scalar, batched,
//! differential, model sampling) over persistent buffers — zero allocations
//! per query after warmup, bit-for-bit identical to the enum-walk kernels,
//! which remain as the reference implementation.
//!
//! # Examples
//!
//! ```
//! use qkc_cnf::Cnf;
//! use qkc_knowledge::{compile, evaluate, smooth, AcWeights, CompileOptions};
//! use qkc_math::Complex;
//!
//! // WMC of (v1 ∨ v2) with w(+v1) = 0.25, w(+v2) = 0.5:
//! let mut f = Cnf::new(2);
//! f.add_clause(vec![1, 2]);
//! let compiled = compile(&f, &CompileOptions::default());
//! let nnf = smooth(&compiled.nnf, &[vec![1, -1], vec![2, -2]]);
//! let mut w = AcWeights::uniform(2);
//! w.set(1, Complex::real(0.25), Complex::real(1.0));
//! w.set(2, Complex::real(0.5), Complex::real(1.0));
//! // models: (T,T) .125 + (T,F) .25 + (F,T) .5 = 0.875
//! assert!((evaluate(&nnf, &w).re - 0.875).abs() < 1e-12);
//! ```

mod batch;
mod compiler;
mod evaluate;
mod gibbs;
pub mod lanes;
mod nnf;
mod order;
mod tape;
mod transform;
mod verify;

pub use batch::{
    evaluate_batch, evaluate_batch_into, evaluate_with_differentials_batch, AcWeightsBatch,
    DifferentialsBatch,
};
pub use compiler::{compile, CompileOptions, CompileStats, Compiled};
pub use evaluate::{evaluate, evaluate_with_differentials, AcWeights, Differentials};
pub use gibbs::{GibbsOptions, GibbsSampler, QueryVar};
pub use lanes::{LaneBlock, LANE_WIDTH};
pub use nnf::{Nnf, NnfBuilder, NnfId, NnfNode};
pub use order::{compute_ranks, compute_ranks_balanced, VarOrder, DEFAULT_SEPARATOR_BALANCE};
pub use tape::{
    fnv1a as wire_checksum, AcTape, DiffCone, TangentPlan, TangentPlanBatch, TapeDecodeError,
    TapeDifferentials, TapeEvaluator, TapeId, TapeOp, TapeOpKind,
    WIRE_VERSION as TAPE_WIRE_VERSION,
};
pub use transform::{project_out, smooth};
pub use verify::{
    verify_tangent_plan, verify_tangent_plan_batch, verify_tape, verify_tape_bytes, Finding,
    Severity, VerifyLevel, VerifyPass, VerifyReport,
};
