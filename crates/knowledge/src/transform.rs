//! d-DNNF post-processing: internal-state elision and smoothing.
//!
//! * [`project_out`] removes literals of summed-out variables (intermediate
//!   qubit states) by replacing them with ⊤ and re-simplifying bottom-up
//!   through the hash-consing builder — the paper's "qubit state elision"
//!   (§3.2.2, optimization 1), which lets the circuit compute output
//!   amplitudes without materializing intermediate-state structure.
//! * [`smooth`] makes the circuit smooth over the *query* variable groups
//!   (final qubit states, noise RVs, measurement RVs) so that evidence and
//!   differential queries are exact.

use crate::nnf::{Nnf, NnfBuilder, NnfId, NnfNode};
use qkc_cnf::{lit_var, Lit};
use std::collections::HashMap;

/// Rebuilds the circuit with every literal of a variable failing `keep`
/// replaced by ⊤. Sound for evaluation whenever the dropped variables carry
/// weight 1 on both polarities and never receive evidence.
pub fn project_out(nnf: &Nnf, keep: impl Fn(u32) -> bool) -> Nnf {
    let mut b = NnfBuilder::new();
    let mut map: Vec<NnfId> = Vec::with_capacity(nnf.num_nodes());
    for node in nnf.nodes() {
        let new_id = match node {
            NnfNode::True => b.true_id(),
            NnfNode::False => b.false_id(),
            NnfNode::Lit(l) => {
                if keep(lit_var(*l)) {
                    b.lit(*l)
                } else {
                    b.true_id()
                }
            }
            NnfNode::And(cs) => {
                let children: Vec<NnfId> = cs.iter().map(|&c| map[c as usize]).collect();
                b.and(children)
            }
            NnfNode::Or(a, c) => b.or(map[*a as usize], map[*c as usize]),
        };
        map.push(new_id);
    }
    b.extract(map[nnf.root() as usize])
}

/// Makes the circuit smooth over the given variable groups.
///
/// Each group lists the literals covering one query variable's domain:
/// `[+v, -v]` for a binary-encoded node, or the positive indicator literals
/// for a multi-valued node. After smoothing, every model of the circuit
/// mentions exactly one literal from every group, which is the precondition
/// for evidence setting and differential queries to be exact.
pub fn smooth(nnf: &Nnf, groups: &[Vec<Lit>]) -> Nnf {
    let num_groups = groups.len();
    if num_groups == 0 {
        return project_out(nnf, |_| true); // copy
    }
    // var -> group index
    let mut group_of: HashMap<u32, usize> = HashMap::new();
    for (gi, lits) in groups.iter().enumerate() {
        for &l in lits {
            group_of.insert(lit_var(l), gi);
        }
    }
    let blocks = num_groups.div_ceil(64);
    // Group bitsets per original node, flat storage.
    let mut sets = vec![0u64; nnf.num_nodes() * blocks];
    let set_bit = |sets: &mut [u64], node: usize, g: usize| {
        sets[node * blocks + g / 64] |= 1 << (g % 64);
    };
    for (i, node) in nnf.nodes().iter().enumerate() {
        match node {
            NnfNode::Lit(l) => {
                if let Some(&g) = group_of.get(&lit_var(*l)) {
                    set_bit(&mut sets, i, g);
                }
            }
            NnfNode::And(cs) => {
                for &c in cs.iter() {
                    for blk in 0..blocks {
                        sets[i * blocks + blk] |= sets[c as usize * blocks + blk];
                    }
                }
            }
            NnfNode::Or(a, c) => {
                for &child in [*a, *c].iter() {
                    for blk in 0..blocks {
                        sets[i * blocks + blk] |= sets[child as usize * blocks + blk];
                    }
                }
            }
            _ => {}
        }
    }

    let mut b = NnfBuilder::new();
    // Sum-out gadget per group: an OR-chain over the group's literals.
    let gadgets: Vec<NnfId> = groups
        .iter()
        .map(|lits| {
            let mut acc: Option<NnfId> = None;
            for &l in lits {
                let ln = b.lit(l);
                acc = Some(match acc {
                    None => ln,
                    Some(prev) => b.or(prev, ln),
                });
            }
            acc.expect("non-empty group")
        })
        .collect();

    // Pad a child up to the group set `want`.
    let missing_groups = |sets: &[u64], node: usize, want: &[u64]| -> Vec<usize> {
        let mut out = Vec::new();
        for g in 0..num_groups {
            let has = sets[node * blocks + g / 64] >> (g % 64) & 1 == 1;
            let wanted = want[g / 64] >> (g % 64) & 1 == 1;
            if wanted && !has {
                out.push(g);
            }
        }
        out
    };

    let mut map: Vec<NnfId> = Vec::with_capacity(nnf.num_nodes());
    for (i, node) in nnf.nodes().iter().enumerate() {
        let new_id = match node {
            NnfNode::True => b.true_id(),
            NnfNode::False => b.false_id(),
            NnfNode::Lit(l) => b.lit(*l),
            NnfNode::And(cs) => {
                let children: Vec<NnfId> = cs.iter().map(|&c| map[c as usize]).collect();
                b.and(children)
            }
            NnfNode::Or(a, c) => {
                let want: Vec<u64> = sets[i * blocks..(i + 1) * blocks].to_vec();
                let mut padded = [map[*a as usize], map[*c as usize]];
                for (slot, &child) in [*a, *c].iter().enumerate() {
                    let miss = missing_groups(&sets, child as usize, &want);
                    if !miss.is_empty() {
                        let mut parts = vec![padded[slot]];
                        parts.extend(miss.iter().map(|&g| gadgets[g]));
                        padded[slot] = b.and(parts);
                    }
                }
                b.or(padded[0], padded[1])
            }
        };
        map.push(new_id);
    }
    // Pad the root to cover every group.
    let full: Vec<u64> = (0..blocks)
        .map(|blk| {
            let hi = (num_groups - blk * 64).min(64);
            if hi >= 64 {
                u64::MAX
            } else {
                (1u64 << hi) - 1
            }
        })
        .collect();
    let root_missing = missing_groups(&sets, nnf.root() as usize, &full);
    let mut root = map[nnf.root() as usize];
    if !root_missing.is_empty() {
        let mut parts = vec![root];
        parts.extend(root_missing.iter().map(|&g| gadgets[g]));
        root = b.and(parts);
    }
    b.extract(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};
    use crate::evaluate::{evaluate, AcWeights};
    use qkc_cnf::Cnf;
    use qkc_math::{Complex, C_ONE, C_ZERO};

    #[test]
    fn project_out_sums_over_dropped_vars() {
        // f = XOR(v1, v2): models (1,0) and (0,1); every model mentions v2
        // (the soundness condition for projection, which circuit encodings
        // guarantee for internal states). Projecting v2 sums it out:
        // Σ_{v2} f(v1=b, ·) = 1 for both b.
        let mut f = Cnf::new(2);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, -2]);
        let c = compile(&f, &CompileOptions::default());
        let p = project_out(&c.nnf, |v| v == 1);
        let mut w = AcWeights::uniform(2);
        w.set(1, C_ONE, C_ZERO); // evidence v1 = 1
        assert!(evaluate(&p, &w).approx_eq(C_ONE, 1e-12));
        w.set(1, C_ZERO, C_ONE); // evidence v1 = 0
        assert!(evaluate(&p, &w).approx_eq(C_ONE, 1e-12));
        // With v2 weighted 2.0 on both polarities before projection the sum
        // doubles — check against the unprojected circuit.
        let mut w2 = AcWeights::uniform(2);
        w2.set(1, C_ONE, C_ZERO);
        w2.set(2, Complex::real(2.0), Complex::real(2.0));
        assert!(evaluate(&c.nnf, &w2).approx_eq(Complex::real(2.0), 1e-12));
    }

    #[test]
    fn project_out_shrinks_circuit() {
        let mut f = Cnf::new(4);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-2, 3]);
        f.add_clause(vec![3, 4]);
        let c = compile(&f, &CompileOptions::default());
        let p = project_out(&c.nnf, |v| v == 1);
        assert!(p.num_nodes() <= c.nnf.num_nodes());
        assert_eq!(p.mentioned_vars(), vec![1]);
    }

    #[test]
    fn smoothing_preserves_full_evidence_values() {
        let mut f = Cnf::new(3);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, 3]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<i32>> = (1..=3).map(|v| vec![v, -v]).collect();
        let s = smooth(&c.nnf, &groups);
        // Under any full evidence, smoothed and raw circuits agree.
        for mask in 0..8u32 {
            let mut w = AcWeights::uniform(3);
            for v in 1..=3u32 {
                if (mask >> (v - 1)) & 1 == 1 {
                    w.set(v, C_ONE, C_ZERO);
                } else {
                    w.set(v, C_ZERO, C_ONE);
                }
            }
            let raw = evaluate(&c.nnf, &w);
            let smoothed = evaluate(&s, &w);
            assert!(
                smoothed.approx_eq(raw, 1e-12),
                "mask {mask}: {smoothed} vs {raw}"
            );
        }
    }

    #[test]
    fn smoothing_fixes_partial_mention() {
        // f = (v1): v2 never mentioned. Unsmoothed circuit ignores v2's
        // evidence; smoothed circuit respects it.
        let mut f = Cnf::new(2);
        f.add_clause(vec![1]);
        let c = compile(&f, &CompileOptions::default());
        let groups = vec![vec![1, -1], vec![2, -2]];
        let s = smooth(&c.nnf, &groups);
        let mut w = AcWeights::uniform(2);
        w.set(1, C_ONE, C_ZERO);
        w.set(2, C_ZERO, C_ZERO); // impossible evidence for v2
        assert!(evaluate(&s, &w).approx_eq(C_ZERO, 1e-12));
        w.set(2, C_ONE, C_ZERO);
        assert!(evaluate(&s, &w).approx_eq(C_ONE, 1e-12));
    }

    #[test]
    fn smoothing_multivalued_group() {
        // One "3-valued" group of indicator vars 1..3 with an exactly-one
        // constraint, plus an unconstrained binary var group.
        let mut f = Cnf::new(4);
        f.add_clause(vec![1, 2, 3]);
        f.add_clause(vec![-1, -2]);
        f.add_clause(vec![-1, -3]);
        f.add_clause(vec![-2, -3]);
        let c = compile(&f, &CompileOptions::default());
        let groups = vec![vec![1, 2, 3], vec![4, -4]];
        let s = smooth(&c.nnf, &groups);
        // Evidence: indicator value 1 (var 2 true, others false), v4 free.
        let mut w = AcWeights::uniform(4);
        w.set(1, C_ZERO, C_ONE);
        w.set(2, C_ONE, C_ONE);
        w.set(3, C_ZERO, C_ONE);
        // v4 both polarities weight 1 → sums to 2 over v4.
        assert!(evaluate(&s, &w).approx_eq(Complex::real(2.0), 1e-12));
    }
}
