//! Arithmetic-circuit evaluation: the upward pass computes an amplitude
//! (weighted model count over the complex field, §3.3.1); the downward pass
//! computes, in one traversal, the partial derivative with respect to every
//! literal — which by Darwiche's differential semantics is the amplitude of
//! the query with that variable's evidence *replaced* (§3.3.2). The
//! downward pass is what makes Gibbs transitions O(|AC|).

use crate::nnf::{Nnf, NnfNode};
use qkc_cnf::Lit;
use qkc_math::{Complex, C_ONE, C_ZERO};
use std::collections::HashMap;

/// Literal weights for evaluation: a pair `(w(+v), w(-v))` per variable.
///
/// * Parameter variables: `w(+P)` is the amplitude/probability value,
///   `w(-P) = 1`.
/// * Query variables under evidence: the indicator of the observed value
///   gets 1, the others 0.
/// * Everything else (summed-out internal states): both 1.
///
/// Weights are stored interleaved — slot `2v` is `w(+v)`, slot `2v+1` is
/// `w(-v)` — so a literal weight is one indexed load once its slot is
/// known. The compiled tape precomputes literal slots at lowering time,
/// making the leaf fetch branch-free on the hot path.
#[derive(Debug, Clone)]
pub struct AcWeights {
    w: Vec<Complex>,
}

impl AcWeights {
    /// All-ones weights over `num_vars` variables.
    pub fn uniform(num_vars: usize) -> Self {
        Self {
            w: vec![C_ONE; 2 * (num_vars + 1)],
        }
    }

    /// All-zeros weights over `num_vars` variables — the natural starting
    /// point for *tangent* vectors `d(weight)/dθ`, which are zero except at
    /// the parameter variables a symbol actually drives.
    pub fn zeros(num_vars: usize) -> Self {
        Self {
            w: vec![C_ZERO; 2 * (num_vars + 1)],
        }
    }

    /// The interleaved storage slot of a literal: `2v` for `+v`, `2v+1`
    /// for `-v`.
    #[inline]
    pub fn slot_of(l: Lit) -> u32 {
        if l > 0 {
            2 * l as u32
        } else {
            2 * (-l) as u32 + 1
        }
    }

    /// Sets both polarities of variable `v`.
    #[inline]
    pub fn set(&mut self, v: u32, pos: Complex, neg: Complex) {
        self.w[2 * v as usize] = pos;
        self.w[2 * v as usize + 1] = neg;
    }

    /// The weight of a literal.
    #[inline]
    pub fn get(&self, l: Lit) -> Complex {
        self.w[Self::slot_of(l) as usize]
    }

    /// The weight at a precomputed [`slot_of`](AcWeights::slot_of) slot.
    #[inline]
    pub fn by_slot(&self, slot: u32) -> Complex {
        self.w[slot as usize]
    }

    /// Number of interleaved slots (`2 × (num_vars + 1)`).
    #[inline]
    pub(crate) fn num_slots(&self) -> usize {
        self.w.len()
    }

    /// Number of variables covered.
    pub fn num_vars(&self) -> usize {
        self.w.len() / 2 - 1
    }
}

/// Upward pass: the circuit's value under `weights`.
///
/// # Examples
///
/// ```
/// use qkc_cnf::Cnf;
/// use qkc_knowledge::{compile, evaluate, AcWeights, CompileOptions};
///
/// let mut f = Cnf::new(1);
/// f.add_clause(vec![1]);
/// let c = compile(&f, &CompileOptions::default());
/// let w = AcWeights::uniform(1);
/// assert_eq!(evaluate(&c.nnf, &w).re, 1.0);
/// ```
pub fn evaluate(nnf: &Nnf, weights: &AcWeights) -> Complex {
    let mut values = vec![C_ZERO; nnf.num_nodes()];
    for (i, node) in nnf.nodes().iter().enumerate() {
        values[i] = match node {
            NnfNode::True => C_ONE,
            NnfNode::False => C_ZERO,
            NnfNode::Lit(l) => weights.get(*l),
            NnfNode::And(cs) => {
                let mut acc = C_ONE;
                for &c in cs.iter() {
                    acc *= values[c as usize];
                    if acc == C_ZERO {
                        break;
                    }
                }
                acc
            }
            NnfNode::Or(a, b) => values[*a as usize] + values[*b as usize],
        };
    }
    values[nnf.root() as usize]
}

/// The result of a combined upward + downward pass.
#[derive(Debug)]
pub struct Differentials {
    /// Value at the root (the amplitude of the current evidence).
    pub value: Complex,
    partials: Vec<Complex>,
    lit_nodes: HashMap<Lit, u32>,
}

impl Differentials {
    /// `∂f/∂w(lit)`: with evidence weights this is the amplitude of the
    /// same query with `lit`'s variable re-assigned to satisfy `lit`
    /// (Darwiche's differential semantics; requires the circuit to be
    /// smooth over that variable's query group).
    ///
    /// Returns `None` if the literal does not appear in the circuit.
    pub fn wrt_lit(&self, lit: Lit) -> Option<Complex> {
        self.lit_nodes
            .get(&lit)
            .map(|&id| self.partials[id as usize])
    }

    /// The partial derivative of the root with respect to node `id`.
    pub fn wrt_node(&self, id: u32) -> Complex {
        self.partials[id as usize]
    }
}

/// Combined upward and downward pass.
///
/// The downward pass uses prefix/suffix products at AND nodes, so it is
/// exact even when some child values are zero (no divisions).
pub fn evaluate_with_differentials(nnf: &Nnf, weights: &AcWeights) -> Differentials {
    let n = nnf.num_nodes();
    let mut values = vec![C_ZERO; n];
    let mut lit_nodes: HashMap<Lit, u32> = HashMap::new();
    for (i, node) in nnf.nodes().iter().enumerate() {
        values[i] = match node {
            NnfNode::True => C_ONE,
            NnfNode::False => C_ZERO,
            NnfNode::Lit(l) => {
                lit_nodes.insert(*l, i as u32);
                weights.get(*l)
            }
            NnfNode::And(cs) => {
                let mut acc = C_ONE;
                for &c in cs.iter() {
                    acc *= values[c as usize];
                }
                acc
            }
            NnfNode::Or(a, b) => values[*a as usize] + values[*b as usize],
        };
    }
    let mut partials = vec![C_ZERO; n];
    partials[nnf.root() as usize] = C_ONE;
    let mut scratch: Vec<Complex> = Vec::new();
    for (i, node) in nnf.nodes().iter().enumerate().rev() {
        let p = partials[i];
        if p == C_ZERO {
            continue;
        }
        match node {
            NnfNode::And(cs) => {
                // scratch[k] = Π_{j>k} v_j stashed from the right; then a
                // forward sweep carries pq = p·Π_{j<k} v_j so each child's
                // contribution pq·scratch[k] costs a single multiply.
                scratch.clear();
                scratch.resize(cs.len(), C_ONE);
                let mut suffix = C_ONE;
                for (k, &c) in cs.iter().enumerate().rev() {
                    scratch[k] = suffix;
                    suffix *= values[c as usize];
                }
                let mut pq = p;
                for (k, &c) in cs.iter().enumerate() {
                    partials[c as usize] += pq * scratch[k];
                    pq *= values[c as usize];
                }
            }
            NnfNode::Or(a, b) => {
                partials[*a as usize] += p;
                partials[*b as usize] += p;
            }
            _ => {}
        }
    }
    Differentials {
        value: values[nnf.root() as usize],
        partials,
        lit_nodes,
    }
}

/// Samples one model (satisfying assignment) of the circuit, with branch
/// choices weighted by the *absolute* values of the literal weights — so
/// complex-amplitude cancellations cannot hide support.
///
/// Returns the literals along the sampled model, or `None` if the circuit
/// has no model with nonzero weight magnitude. Used to initialize Gibbs
/// chains inside the wavefunction's support, which plain random
/// initialization cannot guarantee for sharply peaked distributions.
pub fn sample_model<R: rand::Rng + ?Sized>(
    nnf: &Nnf,
    weights: &AcWeights,
    rng: &mut R,
) -> Option<Vec<Lit>> {
    let n = nnf.num_nodes();
    let mut mag = vec![0.0f64; n];
    for (i, node) in nnf.nodes().iter().enumerate() {
        mag[i] = match node {
            NnfNode::True => 1.0,
            NnfNode::False => 0.0,
            NnfNode::Lit(l) => weights.get(*l).norm(),
            NnfNode::And(cs) => cs.iter().map(|&c| mag[c as usize]).product(),
            NnfNode::Or(a, b) => mag[*a as usize] + mag[*b as usize],
        };
    }
    if mag[nnf.root() as usize] <= 0.0 {
        return None;
    }
    let mut lits = Vec::new();
    let mut stack = vec![nnf.root()];
    while let Some(id) = stack.pop() {
        match &nnf.nodes()[id as usize] {
            NnfNode::Lit(l) => lits.push(*l),
            NnfNode::And(cs) => stack.extend(cs.iter().copied()),
            NnfNode::Or(a, b) => {
                let (ma, mb) = (mag[*a as usize], mag[*b as usize]);
                let pick_a = if ma + mb <= 0.0 {
                    rng.gen::<bool>()
                } else {
                    rng.gen::<f64>() * (ma + mb) < ma
                };
                stack.push(if pick_a { *a } else { *b });
            }
            _ => {}
        }
    }
    Some(lits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};
    use qkc_cnf::Cnf;

    #[test]
    fn derivative_matches_reassignment() {
        // f = (v1 ∨ v2) ∧ (¬v1 ∨ v3): check ∂f/∂λ against evaluating with
        // flipped evidence, for every var and polarity.
        let mut f = Cnf::new(3);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, 3]);
        let c = compile(&f, &CompileOptions::default());
        // Smooth it over all three variables so differentials are total.
        let groups: Vec<Vec<Lit>> = (1..=3).map(|v| vec![v, -v]).collect();
        let nnf = crate::transform::smooth(&c.nnf, &groups);

        // Evidence: v1=1, v2=0, v3=1.
        let mut w = AcWeights::uniform(3);
        w.set(1, C_ONE, C_ZERO);
        w.set(2, C_ZERO, C_ONE);
        w.set(3, C_ONE, C_ZERO);
        let d = evaluate_with_differentials(&nnf, &w);
        assert_eq!(d.value, C_ONE); // (1∨0)∧(0∨1) = 1

        for v in 1..=3u32 {
            for phase in [true, false] {
                let lit = if phase { v as Lit } else { -(v as Lit) };
                // Re-evaluate with v's evidence replaced.
                let mut w2 = w.clone();
                if phase {
                    w2.set(v, C_ONE, C_ZERO);
                } else {
                    w2.set(v, C_ZERO, C_ONE);
                }
                let want = evaluate(&nnf, &w2);
                let got = d.wrt_lit(lit).unwrap_or(C_ZERO);
                assert!(got.approx_eq(want, 1e-12), "lit {lit}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn prefix_suffix_handles_zero_children() {
        // f = v1 ∧ v2 with w(+v2) = 0: ∂f/∂w(+v1) must still be exact.
        let mut f = Cnf::new(2);
        f.add_clause(vec![1]);
        f.add_clause(vec![2]);
        let c = compile(&f, &CompileOptions::default());
        let mut w = AcWeights::uniform(2);
        w.set(2, C_ZERO, C_ONE);
        let d = evaluate_with_differentials(&c.nnf, &w);
        assert_eq!(d.value, C_ZERO);
        // ∂f/∂w(+v2) = w(+v1) = 1 even though the product is zero.
        assert!(d.wrt_lit(2).unwrap().approx_eq(C_ONE, 1e-15));
    }

    #[test]
    fn sampled_models_satisfy_the_formula() {
        use rand::SeedableRng;
        let mut f = Cnf::new(3);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, 3]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<Lit>> = (1..=3).map(|v| vec![v, -v]).collect();
        let nnf = crate::transform::smooth(&c.nnf, &groups);
        let w = AcWeights::uniform(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let lits = sample_model(&nnf, &w, &mut rng).expect("satisfiable");
            let mut assign = [true; 4];
            for &l in &lits {
                assign[l.unsigned_abs() as usize] = l > 0;
            }
            let a: Vec<bool> = (1..=3).map(|v| assign[v]).collect();
            assert!(f.is_satisfied_by(&a), "model {lits:?} violates formula");
        }
    }

    #[test]
    fn unsat_circuit_has_no_model() {
        use rand::SeedableRng;
        let mut f = Cnf::new(1);
        f.add_clause(vec![1]);
        f.add_clause(vec![-1]);
        let c = compile(&f, &CompileOptions::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(sample_model(&c.nnf, &AcWeights::uniform(1), &mut rng).is_none());
    }

    #[test]
    fn weights_accessors() {
        let mut w = AcWeights::uniform(2);
        assert_eq!(w.get(1), C_ONE);
        w.set(2, Complex::imag(2.0), Complex::real(3.0));
        assert_eq!(w.get(2), Complex::imag(2.0));
        assert_eq!(w.get(-2), Complex::real(3.0));
        assert_eq!(w.num_vars(), 2);
    }
}
