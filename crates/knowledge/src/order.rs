//! Decision-variable orders for the knowledge compiler (paper §3.2.2,
//! optimization 2: "qubit state elimination order").
//!
//! * [`VarOrder::Lexicographic`] follows variable creation order, which for
//!   circuit encodings is time order — the paper's lexicographic option.
//! * [`VarOrder::MinCutSeparator`] recursively bisects the variable
//!   interaction graph and ranks each separator ahead of the halves it
//!   splits, so decisions disconnect the formula early. This plays the role
//!   of c2d's hypergraph-partitioning dtree (our stand-in: BFS-grown
//!   balanced bisection, documented in DESIGN.md).

use qkc_cnf::{lit_var, Cnf};
use std::collections::HashSet;

/// The available decision orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarOrder {
    /// Variable-index order (circuit time order).
    Lexicographic,
    /// Separator-first order from recursive min-cut bisection.
    #[default]
    MinCutSeparator,
}

/// The default bisection split fraction of [`VarOrder::MinCutSeparator`]:
/// perfectly balanced halves. See [`compute_ranks_balanced`].
pub const DEFAULT_SEPARATOR_BALANCE: f64 = 0.5;

/// Computes `rank[var]` (1-based vars; index 0 unused): the compiler always
/// branches on the unassigned variable of minimum rank within a component.
pub fn compute_ranks(cnf: &Cnf, order: VarOrder) -> Vec<u32> {
    compute_ranks_balanced(cnf, order, DEFAULT_SEPARATOR_BALANCE)
}

/// [`compute_ranks`] with an explicit bisection balance for
/// [`VarOrder::MinCutSeparator`]: the BFS diameter ordering is split at
/// fraction `balance` (clamped to `(0, 1)`) instead of the midpoint.
/// Skewed cuts trade separator size against recursion depth; `0.5` is the
/// balanced default and reproduces [`compute_ranks`] exactly. The balance
/// is part of the compiled artifact's identity — two compilations that
/// differ only in it may produce different variable orders, hence
/// different (equally correct) circuits.
pub fn compute_ranks_balanced(cnf: &Cnf, order: VarOrder, balance: f64) -> Vec<u32> {
    let n = cnf.num_vars();
    match order {
        VarOrder::Lexicographic => (0..=n as u32).collect(),
        VarOrder::MinCutSeparator => separator_ranks(cnf, balance),
    }
}

fn separator_ranks(cnf: &Cnf, balance: f64) -> Vec<u32> {
    let n = cnf.num_vars();
    // Variable interaction graph: adjacency via shared clauses.
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n + 1];
    for clause in cnf.clauses() {
        for (i, &a) in clause.iter().enumerate() {
            for &b in &clause[i + 1..] {
                let (va, vb) = (lit_var(a), lit_var(b));
                if va != vb {
                    adj[va as usize].insert(vb);
                    adj[vb as usize].insert(va);
                }
            }
        }
    }
    let mut rank = vec![u32::MAX; n + 1];
    let mut next_rank = 0u32;
    let mut assign = |v: u32, rank: &mut Vec<u32>, next: &mut u32| {
        if rank[v as usize] == u32::MAX {
            rank[v as usize] = *next;
            *next += 1;
        }
    };

    // Process each connected component of the interaction graph.
    let mut seen = vec![false; n + 1];
    for start in 1..=n as u32 {
        if seen[start as usize] {
            continue;
        }
        // Gather the component.
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start as usize] = true;
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &w in &adj[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        // The gather above walks HashSets, whose iteration order varies per
        // process (RandomState); sort so the tie-breaks inside `bisect`
        // (min-degree start vertex) — and therefore the variable order, the
        // compiled NNF, and every downstream sampling stream — are
        // deterministic functions of the CNF alone.
        comp.sort_unstable();
        bisect(&comp, &adj, balance, &mut rank, &mut next_rank, &mut assign);
    }
    // Isolated / never-mentioned variables get trailing ranks.
    for v in 1..=n as u32 {
        assign(v, &mut rank, &mut next_rank);
    }
    rank
}

/// Recursively ranks `vars`: find a balanced bisection by BFS layering, rank
/// the boundary (separator) first, then recurse into both halves.
fn bisect(
    vars: &[u32],
    adj: &[HashSet<u32>],
    balance: f64,
    rank: &mut Vec<u32>,
    next_rank: &mut u32,
    assign: &mut impl FnMut(u32, &mut Vec<u32>, &mut u32),
) {
    if vars.len() <= 3 {
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        for v in sorted {
            assign(v, rank, next_rank);
        }
        return;
    }
    let in_vars: HashSet<u32> = vars.iter().copied().collect();
    // BFS from the minimum-degree vertex gives a rough diameter ordering.
    let start = *vars
        .iter()
        .min_by_key(|&&v| {
            adj[v as usize]
                .iter()
                .filter(|w| in_vars.contains(w))
                .count()
        })
        .expect("non-empty");
    let mut order = Vec::with_capacity(vars.len());
    let mut visited: HashSet<u32> = HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    visited.insert(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let mut nbrs: Vec<u32> = adj[v as usize]
            .iter()
            .copied()
            .filter(|w| in_vars.contains(w) && !visited.contains(w))
            .collect();
        nbrs.sort_unstable();
        for w in nbrs {
            visited.insert(w);
            queue.push_back(w);
        }
    }
    // Vertices unreachable inside the component slice (can happen after the
    // separator is removed) are appended.
    for &v in vars {
        if !visited.contains(&v) {
            order.push(v);
        }
    }
    // Split the BFS ordering at the requested fraction; floor at balance
    // 0.5 is exactly the old midpoint split, and the clamp keeps both
    // halves non-empty under extreme balances.
    let half =
        ((order.len() as f64 * balance.clamp(0.0, 1.0)).floor() as usize).clamp(1, order.len() - 1);
    let a: HashSet<u32> = order[..half].iter().copied().collect();
    let b: HashSet<u32> = order[half..].iter().copied().collect();
    // Separator: vertices of A adjacent to B (take the smaller boundary
    // side for a tighter cut).
    let boundary_a: Vec<u32> = a
        .iter()
        .copied()
        .filter(|&v| adj[v as usize].iter().any(|w| b.contains(w)))
        .collect();
    let boundary_b: Vec<u32> = b
        .iter()
        .copied()
        .filter(|&v| adj[v as usize].iter().any(|w| a.contains(w)))
        .collect();
    let mut sep = if boundary_a.len() <= boundary_b.len() {
        boundary_a
    } else {
        boundary_b
    };
    if sep.is_empty() || sep.len() >= vars.len() {
        // Degenerate cut: fall back to BFS order.
        for v in order {
            assign(v, rank, next_rank);
        }
        return;
    }
    sep.sort_unstable();
    for &v in &sep {
        assign(v, rank, next_rank);
    }
    let sep_set: HashSet<u32> = sep.into_iter().collect();
    let rest_a: Vec<u32> = order[..half]
        .iter()
        .copied()
        .filter(|v| !sep_set.contains(v))
        .collect();
    let rest_b: Vec<u32> = order[half..]
        .iter()
        .copied()
        .filter(|v| !sep_set.contains(v))
        .collect();
    if !rest_a.is_empty() {
        bisect(&rest_a, adj, balance, rank, next_rank, assign);
    }
    if !rest_b.is_empty() {
        bisect(&rest_b, adj, balance, rank, next_rank, assign);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_cnf(n: usize) -> Cnf {
        // v1 - v2 - ... - vn, a path graph.
        let mut f = Cnf::new(n);
        for v in 1..n {
            f.add_clause(vec![v as i32, (v + 1) as i32]);
        }
        f
    }

    #[test]
    fn lexicographic_is_identity() {
        let f = chain_cnf(5);
        let r = compute_ranks(&f, VarOrder::Lexicographic);
        assert_eq!(r[1..], [1, 2, 3, 4, 5]);
    }

    #[test]
    fn separator_ranks_are_a_permutation() {
        let f = chain_cnf(12);
        let r = compute_ranks(&f, VarOrder::MinCutSeparator);
        let mut seen: Vec<u32> = r[1..].to_vec();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..12).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn separator_of_chain_is_ranked_first() {
        // For a path, the bisection separator is a middle vertex; it must
        // get the smallest rank in its component.
        let f = chain_cnf(9);
        let r = compute_ranks(&f, VarOrder::MinCutSeparator);
        let min_var = (1..=9).min_by_key(|&v| r[v]).unwrap();
        assert!(
            (3..=7).contains(&min_var),
            "first decision {min_var} should be near the middle"
        );
    }

    #[test]
    fn isolated_vars_get_ranks() {
        let mut f = Cnf::new(4);
        f.add_clause(vec![1, 2]);
        // vars 3, 4 never mentioned.
        let r = compute_ranks(&f, VarOrder::MinCutSeparator);
        assert!(r[3] != u32::MAX && r[4] != u32::MAX);
    }

    #[test]
    fn ranks_are_deterministic_across_recomputation() {
        // Each HashMap/HashSet instance gets fresh RandomState keys, so any
        // iteration-order leak into the ranking shows up as two different
        // answers for one CNF. A dense-ish random 3-CNF exercises the
        // bisection path; repeat to make order leaks overwhelmingly likely
        // to surface.
        let mut f = Cnf::new(12);
        let mut x = 7u64;
        for _ in 0..30 {
            let mut next = || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 12 + 1) as i32
            };
            let (a, b, c) = (next(), next(), next());
            if a != b && b != c && a != c {
                f.add_clause(vec![a, -b, c]);
            }
        }
        let first = compute_ranks(&f, VarOrder::MinCutSeparator);
        for _ in 0..10 {
            assert_eq!(
                compute_ranks(&f, VarOrder::MinCutSeparator),
                first,
                "variable ranking must be a pure function of the CNF"
            );
        }
    }

    #[test]
    fn disconnected_components_each_ranked() {
        let mut f = Cnf::new(6);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![2, 3]);
        f.add_clause(vec![4, 5]);
        f.add_clause(vec![5, 6]);
        let r = compute_ranks(&f, VarOrder::MinCutSeparator);
        let mut all: Vec<u32> = r[1..].to_vec();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<u32>>());
    }
}
