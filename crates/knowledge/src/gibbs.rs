//! Gibbs (MCMC) sampling from compiled arithmetic circuits (paper §3.3.2).
//!
//! The chain's state assigns a value to every query variable — final qubit
//! states *and* noise/measurement RVs (the paper's transition list for the
//! Bell example flips `q0m2rv` alongside the qubit states). One coordinate
//! update costs a single upward + downward pass: the downward differentials
//! give the amplitude of every single-variable reassignment at once, and the
//! new value is drawn proportionally to `|amplitude|²`.
//!
//! Transitions run on the flat [`AcTape`] through a persistent
//! [`TapeEvaluator`], so a step performs zero allocations: the value /
//! partial buffers, the conditional-probability column, and the MH proposal
//! scratch are all owned by the sampler. [`GibbsSampler::new_enum_walk`]
//! keeps the original enum-arena kernels as a reference implementation —
//! both produce bit-identical chains for the same seed, which the
//! equivalence tests assert.

use crate::evaluate::{evaluate, evaluate_with_differentials, sample_model, AcWeights};
use crate::nnf::Nnf;
use crate::tape::{AcTape, TapeEvaluator};
use qkc_cnf::Lit;
use qkc_math::{Complex, C_ONE, C_ZERO};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One query variable of the chain.
#[derive(Debug, Clone)]
pub struct QueryVar {
    /// Display / bookkeeping label.
    pub label: String,
    /// The literal asserting each domain value, indexed by value.
    /// Binary nodes: `[-v, +v]`; multi-valued nodes: positive indicators.
    /// Empty for variables that unit resolution removed from the circuit
    /// entirely (no evidence to apply).
    pub value_lits: Vec<Lit>,
    /// `Some(value)` if the variable is pinned: it never moves. Pinned
    /// variables with literals still receive evidence.
    pub fixed: Option<usize>,
}

/// Configuration of the sampler.
#[derive(Debug, Clone)]
pub struct GibbsOptions {
    /// Coordinate updates discarded before the first recorded sample.
    pub warmup: usize,
    /// Coordinate updates between recorded samples (1 = record after every
    /// update).
    pub thin: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability of replacing a coordinate update with an independence
    /// Metropolis–Hastings move (a uniformly proposed full assignment,
    /// accepted with ratio `|amp(y)|²/|amp(x)|²`).
    ///
    /// Plain single-flip Gibbs cannot cross between perfectly correlated
    /// modes (e.g. the two branches of a Bell state) — the mixing caveat of
    /// the paper's §3.3.3. The MH move keeps the stationary distribution
    /// exact while making the chain irreducible over the full support. Set
    /// to 0 for the paper-faithful plain Gibbs kernel.
    pub mh_restart_prob: f64,
}

impl Default for GibbsOptions {
    fn default() -> Self {
        Self {
            warmup: 200,
            thin: 1,
            seed: 0,
            mh_restart_prob: 0.05,
        }
    }
}

/// The compiled circuit a chain runs on: the flat tape (production) or the
/// enum arena (reference). Both kernels are bit-for-bit equivalent; the
/// tape path additionally reuses every buffer across transitions.
// The size skew vs the reference variant is fine: exactly one kernel is
// embedded per (long-lived) sampler, so nothing pays for the larger one.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Kernel<'a> {
    Tape {
        tape: &'a AcTape,
        eval: TapeEvaluator,
        /// CNF variables whose weights changed since the last differential
        /// pass — the delta set the next pass recomputes the cone of.
        changed: Vec<u32>,
        /// Too many changes to track (initialization, MH proposals):
        /// the next differential pass runs in full.
        changed_full: bool,
        /// The evaluator's partials still describe the current weights
        /// (no weight change since the last differential pass), so a
        /// rejected/held move can reuse them without any pass at all.
        diffs_fresh: bool,
    },
    EnumWalk {
        nnf: &'a Nnf,
    },
}

/// A Gibbs sampler over a smoothed arithmetic circuit.
#[derive(Debug)]
pub struct GibbsSampler<'a> {
    kernel: Kernel<'a>,
    weights: AcWeights,
    vars: Vec<QueryVar>,
    state: Vec<usize>,
    /// Indices of unfixed variables — vars are immutable after
    /// construction, so this is built once instead of per transition.
    movable: Vec<usize>,
    /// Conditional `|amplitude|²` column scratch, one slot per domain value
    /// of the widest variable — reused every coordinate update.
    probs: Vec<f64>,
    /// MH-move scratch: the pre-proposal state and the proposal, reused.
    saved_state: Vec<usize>,
    /// Model-sampling scratch for chain initialization.
    model_lits: Vec<Lit>,
    rng: StdRng,
    steps_taken: u64,
    moves_accepted: u64,
    mh_restart_prob: f64,
    /// |amplitude|² of the current state, kept in sync across moves.
    current_density: f64,
}

/// Bounded redraw budget for zero-density starts (see
/// [`GibbsSampler::new`]): model sampling weights branches by magnitude,
/// so each redraw lands on a cancelled state with probability < 1 whenever
/// the wavefunction has support, and the budget is generous enough that
/// exhausting it is astronomically unlikely in that case.
const ZERO_DENSITY_REDRAWS: usize = 32;

impl<'a> GibbsSampler<'a> {
    /// Creates a sampler over the flat compiled tape.
    ///
    /// `base_weights` must already carry parameter-variable values (and 1/1
    /// for summed-out internals); this sampler owns the evidence weights of
    /// the query variables.
    ///
    /// # Panics
    ///
    /// Panics if a query variable has an empty domain.
    pub fn new(
        tape: &'a AcTape,
        base_weights: AcWeights,
        vars: Vec<QueryVar>,
        options: &GibbsOptions,
    ) -> Self {
        Self::with_kernel(
            Kernel::Tape {
                tape,
                eval: TapeEvaluator::new(),
                changed: Vec::new(),
                changed_full: true,
                diffs_fresh: false,
            },
            base_weights,
            vars,
            options,
        )
    }

    /// Creates a sampler running the original enum-arena kernels — the
    /// reference implementation the tape path is tested against. Same seed,
    /// same chain, bit for bit; every transition re-allocates its buffers.
    #[doc(hidden)]
    pub fn new_enum_walk(
        nnf: &'a Nnf,
        base_weights: AcWeights,
        vars: Vec<QueryVar>,
        options: &GibbsOptions,
    ) -> Self {
        Self::with_kernel(Kernel::EnumWalk { nnf }, base_weights, vars, options)
    }

    fn with_kernel(
        kernel: Kernel<'a>,
        base_weights: AcWeights,
        vars: Vec<QueryVar>,
        options: &GibbsOptions,
    ) -> Self {
        assert!(
            vars.iter()
                .all(|v| v.fixed.is_some() || !v.value_lits.is_empty()),
            "movable variables need literals"
        );
        let rng = StdRng::seed_from_u64(options.seed);
        let movable: Vec<usize> = (0..vars.len())
            .filter(|&i| vars[i].fixed.is_none())
            .collect();
        let max_domain = vars.iter().map(|v| v.value_lits.len()).max().unwrap_or(0);
        let mut sampler = Self {
            kernel,
            weights: base_weights,
            state: vec![0; vars.len()],
            vars,
            movable,
            probs: Vec::with_capacity(max_domain),
            saved_state: Vec::new(),
            model_lits: Vec::new(),
            rng,
            steps_taken: 0,
            moves_accepted: 0,
            mh_restart_prob: options.mh_restart_prob,
            current_density: 0.0,
        };
        // Initialize inside the support: sample a model of the circuit
        // (with query evidence summed out) and read off the query values.
        // Sharply peaked distributions — the variational regime of the
        // paper's Figure 3 — make random initialization land on
        // zero-amplitude states from which single-flip Gibbs cannot escape.
        //
        // The model-sampling magnitudes depend only on the summed-out base
        // weights, which are identical on every redraw attempt (evidence is
        // reset in between), so the tape kernel computes the magnitude
        // buffer once and reuses it across the whole redraw loop.
        let has_support = match &mut sampler.kernel {
            Kernel::Tape { tape, eval, .. } => eval.model_magnitudes(tape, &sampler.weights) > 0.0,
            Kernel::EnumWalk { .. } => true, // checked per draw by sample_model
        };
        sampler.draw_start(has_support);
        // Model sampling weights branches by magnitude, so phase
        // cancellation can still land the draw on a zero-amplitude state
        // (e.g. a destructively interfering branch whose sub-circuit
        // magnitudes dominate). Redraw before warmup, bounded.
        for _ in 0..ZERO_DENSITY_REDRAWS {
            if sampler.current_density > 0.0 {
                break;
            }
            sampler.reset_query_weights();
            sampler.draw_start(has_support);
        }
        // Warm-up moves the chain into the support and mixes it.
        for _ in 0..options.warmup {
            sampler.step();
        }
        sampler
    }

    /// Draws a start state by magnitude-weighted model sampling, applies
    /// its evidence, and records the resulting `|amplitude|²`. Expects the
    /// query-variable weights to be in their summed-out (1, 1) state — and,
    /// on the tape kernel, the magnitude buffer to be current for those
    /// weights (it is computed once in the constructor and reused across
    /// redraws, since the weights do not change in between).
    fn draw_start(&mut self, has_support: bool) {
        // Initialization rewrites every query variable's evidence.
        self.note_weights_changed_all();
        let model = match &mut self.kernel {
            Kernel::Tape { tape, eval, .. } => {
                if has_support {
                    eval.draw_model(tape, &mut self.rng, &mut self.model_lits);
                    Some(std::mem::take(&mut self.model_lits))
                } else {
                    None
                }
            }
            Kernel::EnumWalk { nnf } => sample_model(nnf, &self.weights, &mut self.rng),
        };
        let mut polarity: std::collections::HashMap<u32, bool> = std::collections::HashMap::new();
        if let Some(lits) = &model {
            for &l in lits {
                polarity.insert(l.unsigned_abs(), l > 0);
            }
        }
        for i in 0..self.vars.len() {
            let v = &self.vars[i];
            let mut chosen = v.fixed;
            if chosen.is_none() {
                for (value, &lit) in v.value_lits.iter().enumerate() {
                    if polarity.get(&lit.unsigned_abs()) == Some(&(lit > 0)) {
                        chosen = Some(value);
                        break;
                    }
                }
            }
            let domain = v.value_lits.len();
            self.state[i] = chosen.unwrap_or_else(|| self.rng.gen_range(0..domain));
        }
        // Return the lits buffer for the next redraw.
        if let Some(lits) = model {
            self.model_lits = lits;
        }
        for i in 0..self.vars.len() {
            if !self.vars[i].value_lits.is_empty() {
                self.apply_evidence(i);
            }
        }
        self.current_density = self.amplitude_of_current_state().norm_sqr();
    }

    /// Restores the summed-out (1, 1) weights of every query literal,
    /// undoing applied evidence so model sampling sees the base
    /// distribution again.
    fn reset_query_weights(&mut self) {
        for var in &self.vars {
            for &lit in &var.value_lits {
                self.weights.set(lit.unsigned_abs(), C_ONE, C_ONE);
            }
        }
    }

    /// The current assignment (one value per query variable).
    pub fn state(&self) -> &[usize] {
        &self.state
    }

    /// The query variables.
    pub fn vars(&self) -> &[QueryVar] {
        &self.vars
    }

    /// Fraction of coordinate updates that changed the value.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps_taken == 0 {
            0.0
        } else {
            self.moves_accepted as f64 / self.steps_taken as f64
        }
    }

    /// Sets the evidence weights for variable `i` to its current value.
    fn apply_evidence(&mut self, i: usize) {
        let var = &self.vars[i];
        let chosen = self.state[i];
        if var.value_lits.len() == 2 && var.value_lits[0] == -var.value_lits[1] {
            // Binary-encoded: one CNF variable.
            let v = var.value_lits[1].unsigned_abs();
            let (pos, neg) = if chosen == 1 {
                (C_ONE, C_ZERO)
            } else {
                (C_ZERO, C_ONE)
            };
            self.weights.set(v, pos, neg);
        } else {
            // Indicator-encoded: chosen indicator 1, others 0; negative
            // polarities always 1.
            for (value, &lit) in var.value_lits.iter().enumerate() {
                let v = lit.unsigned_abs();
                let w = if value == chosen { C_ONE } else { C_ZERO };
                self.weights.set(v, w, C_ONE);
            }
        }
    }

    /// One transition: with probability `mh_restart_prob` an independence
    /// MH move, otherwise a Gibbs coordinate update — pick a random unfixed
    /// variable, compute the conditional |amplitude|² of each of its values
    /// via one upward+downward pass, and resample it. Zero allocations on
    /// the tape kernel.
    pub fn step(&mut self) {
        if self.movable.is_empty() {
            return;
        }
        if self.mh_restart_prob > 0.0 && self.rng.gen::<f64>() < self.mh_restart_prob {
            self.mh_move();
            return;
        }
        let i = self.movable[self.rng.gen_range(0..self.movable.len())];
        self.steps_taken += 1;
        // By Darwiche's differential semantics each value's literal
        // derivative is the amplitude with this variable re-assigned —
        // for binary nodes value 0's literal is `-v`, so one rule covers
        // both encodings.
        let var = &self.vars[i];
        self.probs.clear();
        match &mut self.kernel {
            Kernel::Tape {
                tape,
                eval,
                changed,
                changed_full,
                diffs_fresh,
            } => {
                // Weights unchanged since the last differential pass
                // (previous update resampled the same value): the partials
                // are still exact — skip both passes entirely. Otherwise
                // recompute just the dirty cone of the variables that
                // moved, falling back to a full pass after initialization
                // or MH proposals. All three paths are bit-for-bit the
                // full recompute the enum walk performs.
                if !(*diffs_fresh && changed.is_empty() && !*changed_full) {
                    if *changed_full {
                        eval.differentials(tape, &self.weights);
                    } else {
                        eval.differentials_delta(tape, &self.weights, changed);
                    }
                    changed.clear();
                    *changed_full = false;
                    *diffs_fresh = true;
                }
                self.probs.extend(
                    var.value_lits
                        .iter()
                        .map(|&lit| eval.wrt_lit(tape, lit).unwrap_or(C_ZERO).norm_sqr()),
                );
            }
            Kernel::EnumWalk { nnf } => {
                let d = evaluate_with_differentials(nnf, &self.weights);
                self.probs.extend(
                    var.value_lits
                        .iter()
                        .map(|&lit| d.wrt_lit(lit).unwrap_or(C_ZERO).norm_sqr()),
                );
            }
        }
        let total: f64 = self.probs.iter().sum();
        if total <= 0.0 {
            // Zero-support column (can only happen from a zero-amplitude
            // start state): leave the coordinate and try another next step.
            return;
        }
        let new_value = qkc_math::sample_cdf(&self.probs, &mut self.rng);
        self.current_density = self.probs[new_value];
        if new_value != self.state[i] {
            self.moves_accepted += 1;
            self.state[i] = new_value;
            self.apply_evidence(i);
            self.note_weights_changed(i);
        }
    }

    /// Records that variable `i`'s evidence weights changed, so the tape
    /// kernel's next differential pass recomputes (only) its cone.
    fn note_weights_changed(&mut self, i: usize) {
        if let Kernel::Tape {
            changed,
            changed_full,
            diffs_fresh,
            ..
        } = &mut self.kernel
        {
            *diffs_fresh = false;
            if !*changed_full {
                changed.extend(self.vars[i].value_lits.iter().map(|l| l.unsigned_abs()));
            }
        }
    }

    /// Records a bulk weight change (initialization, MH proposals): the
    /// tape kernel's next differential pass runs in full.
    fn note_weights_changed_all(&mut self) {
        if let Kernel::Tape {
            changed,
            changed_full,
            diffs_fresh,
            ..
        } = &mut self.kernel
        {
            *diffs_fresh = false;
            *changed_full = true;
            changed.clear();
        }
    }

    /// Independence Metropolis–Hastings move: propose a uniform full
    /// assignment; accept with probability `min(1, |amp(y)|²/|amp(x)|²)`
    /// (the proposal is symmetric/uniform, so the ratio is just the target
    /// density ratio).
    fn mh_move(&mut self) {
        self.steps_taken += 1;
        // The proposal rewrites every movable variable's evidence (and a
        // rejection rewrites it back).
        self.note_weights_changed_all();
        self.saved_state.clear();
        self.saved_state.extend_from_slice(&self.state);
        for mi in 0..self.movable.len() {
            let i = self.movable[mi];
            self.state[i] = self.rng.gen_range(0..self.vars[i].value_lits.len());
            self.apply_evidence(i);
        }
        let new_density = self.amplitude_of_current_state().norm_sqr();
        let accept = if self.current_density <= 0.0 {
            new_density > 0.0
        } else {
            self.rng.gen::<f64>() < (new_density / self.current_density).min(1.0)
        };
        if accept {
            if self.state != self.saved_state {
                self.moves_accepted += 1;
            }
            self.current_density = new_density;
        } else {
            self.state.copy_from_slice(&self.saved_state);
            for mi in 0..self.movable.len() {
                self.apply_evidence(self.movable[mi]);
            }
        }
    }

    /// Draws `count` samples, recording the state every `thin` coordinate
    /// updates, and maps each recorded state through `project` (typically:
    /// extract the output-qubit bits).
    pub fn sample_with<T>(
        &mut self,
        count: usize,
        thin: usize,
        mut project: impl FnMut(&[usize]) -> T,
    ) -> Vec<T> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            for _ in 0..thin.max(1) {
                self.step();
            }
            out.push(project(&self.state));
        }
        out
    }

    fn amplitude_of_current_state(&mut self) -> Complex {
        match &mut self.kernel {
            Kernel::Tape { tape, eval, .. } => eval.evaluate(tape, &self.weights),
            Kernel::EnumWalk { nnf } => evaluate(nnf, &self.weights),
        }
    }

    /// The amplitude of the chain's current full assignment.
    pub fn current_amplitude(&mut self) -> Complex {
        self.amplitude_of_current_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};
    use crate::transform::smooth;
    use qkc_cnf::Cnf;

    /// A 2-variable circuit with amplitudes ±1/√2 on (0,0) and (1,1):
    /// a Bell-like parity constraint v1 == v2.
    fn parity_nnf() -> Nnf {
        let mut f = Cnf::new(2);
        f.add_clause(vec![1, -2]);
        f.add_clause(vec![-1, 2]);
        let c = compile(&f, &CompileOptions::default());
        smooth(&c.nnf, &[vec![1, -1], vec![2, -2]])
    }

    fn parity_vars() -> Vec<QueryVar> {
        (1..=2)
            .map(|v| QueryVar {
                label: format!("q{v}"),
                value_lits: vec![-(v as Lit), v as Lit],
                fixed: None,
            })
            .collect()
    }

    #[test]
    fn chain_respects_support() {
        let nnf = parity_nnf();
        let tape = AcTape::lower(&nnf);
        let mut sampler = GibbsSampler::new(
            &tape,
            AcWeights::uniform(2),
            parity_vars(),
            &GibbsOptions {
                warmup: 50,
                thin: 1,
                seed: 42,
                ..Default::default()
            },
        );
        let samples = sampler.sample_with(500, 1, |s| (s[0], s[1]));
        for (a, b) in samples {
            assert_eq!(a, b, "chain left the support");
        }
    }

    #[test]
    fn chain_matches_biased_product_distribution() {
        // Two independent binary vars with amplitude weights (a, b) per
        // polarity: stationary marginals are |a|²/(|a|²+|b|²). Full support,
        // so the chain is irreducible (unlike Bell-like parity modes, which
        // single-flip Gibbs cannot cross — the mixing caveat of §3.3.3).
        let mut f = Cnf::new(2);
        f.add_clause(vec![1, -1]); // tautologies keep vars mentioned
        f.add_clause(vec![2, -2]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<Lit>> = (1..=2).map(|v| vec![v, -v]).collect();
        let nnf = smooth(&c.nnf, &groups);
        let tape = AcTape::lower(&nnf);
        let base = AcWeights::uniform(2);
        let vars: Vec<QueryVar> = (1..=2)
            .map(|v| QueryVar {
                label: format!("q{v}"),
                value_lits: vec![-(v as Lit), v as Lit],
                fixed: None,
            })
            .collect();
        // Conditional weights come from the evidence replacement — encode a
        // bias by scaling one variable's indicator weights via params? Keep
        // simple: uniform weights give 50/50 marginals.
        let mut sampler = GibbsSampler::new(
            &tape,
            base,
            vars,
            &GibbsOptions {
                warmup: 100,
                thin: 2,
                seed: 7,
                ..Default::default()
            },
        );
        let samples = sampler.sample_with(4000, 2, |s| s[0]);
        let ones = samples.iter().filter(|&&x| x == 1).count() as f64;
        let frac = ones / 4000.0;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "uniform marginal expected, got {frac}"
        );
    }

    #[test]
    fn fixed_vars_never_move() {
        let nnf = parity_nnf();
        let tape = AcTape::lower(&nnf);
        let mut vars = parity_vars();
        vars[0].fixed = Some(1);
        let mut sampler = GibbsSampler::new(
            &tape,
            AcWeights::uniform(2),
            vars,
            &GibbsOptions {
                warmup: 20,
                thin: 1,
                seed: 3,
                ..Default::default()
            },
        );
        let samples = sampler.sample_with(200, 1, |s| (s[0], s[1]));
        for (a, b) in samples {
            assert_eq!(a, 1);
            assert_eq!(b, 1, "parity forces the free var to follow");
        }
    }

    #[test]
    fn zero_density_start_is_redrawn_on_interference_heavy_circuit() {
        // f = (v1 ↔ v2) ∧ (v1 ∨ v3) with phase weights w(±v3) = (1, -1):
        // amp(0,0) = w(+v3) = 1 (v3 forced true), amp(1,1) = 1 + (-1) = 0
        // (destructive interference over the free v3), and the off-parity
        // states are unsatisfiable. Model sampling weights branches by
        // *magnitude*, so it prefers the cancelled (1,1) branch (mass 2 of
        // 3) — without the zero-density redraw the chain starts at a
        // zero-amplitude state it can never leave by single flips, and
        // every sample reports (1,1) even though that state has
        // probability zero.
        let mut f = Cnf::new(3);
        f.add_clause(vec![-1, 2]);
        f.add_clause(vec![1, -2]);
        f.add_clause(vec![1, 3]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<Lit>> = (1..=3).map(|v| vec![v, -v]).collect();
        let nnf = smooth(&c.nnf, &groups);
        let tape = AcTape::lower(&nnf);
        for seed in 0..20 {
            let mut base = AcWeights::uniform(3);
            base.set(3, C_ONE, qkc_math::Complex::real(-1.0));
            let mut sampler = GibbsSampler::new(
                &tape,
                base,
                parity_vars(),
                &GibbsOptions {
                    warmup: 30,
                    thin: 1,
                    seed,
                    mh_restart_prob: 0.0,
                },
            );
            assert!(
                sampler.current_amplitude().norm_sqr() > 0.0,
                "seed {seed}: chain initialized on a zero-amplitude state"
            );
            for (a, b) in sampler.sample_with(50, 1, |s| (s[0], s[1])) {
                assert_eq!(
                    (a, b),
                    (0, 0),
                    "seed {seed}: sampled a zero-probability state"
                );
            }
        }
    }

    #[test]
    fn tape_and_enum_walk_chains_are_bit_identical() {
        // Same seed, same circuit, both kernels: states, acceptance
        // bookkeeping, and the full sample stream must match exactly —
        // including through zero-density redraws (interference circuit).
        let mut f = Cnf::new(3);
        f.add_clause(vec![-1, 2]);
        f.add_clause(vec![1, -2]);
        f.add_clause(vec![1, 3]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<Lit>> = (1..=3).map(|v| vec![v, -v]).collect();
        let nnf = smooth(&c.nnf, &groups);
        let tape = AcTape::lower(&nnf);
        for seed in 0..10 {
            let mut base = AcWeights::uniform(3);
            base.set(3, C_ONE, qkc_math::Complex::real(-1.0));
            let options = GibbsOptions {
                warmup: 25,
                thin: 1,
                seed,
                mh_restart_prob: 0.10,
            };
            let mut tape_chain = GibbsSampler::new(&tape, base.clone(), parity_vars(), &options);
            let mut enum_chain = GibbsSampler::new_enum_walk(&nnf, base, parity_vars(), &options);
            assert_eq!(tape_chain.state(), enum_chain.state(), "seed {seed}");
            let a = tape_chain.sample_with(200, 1, <[usize]>::to_vec);
            let b = enum_chain.sample_with(200, 1, <[usize]>::to_vec);
            assert_eq!(a, b, "seed {seed}: chains diverged");
            assert_eq!(
                tape_chain.acceptance_rate(),
                enum_chain.acceptance_rate(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn acceptance_rate_reported() {
        let nnf = parity_nnf();
        let tape = AcTape::lower(&nnf);
        let mut sampler = GibbsSampler::new(
            &tape,
            AcWeights::uniform(2),
            parity_vars(),
            &GibbsOptions::default(),
        );
        sampler.sample_with(100, 1, |_| ());
        let rate = sampler.acceptance_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}
