//! Flat compiled-circuit tape: the cache-friendly execution form of an
//! [`Nnf`].
//!
//! Every query the system answers — amplitudes, probabilities,
//! expectations, Gibbs transitions, batched sweep lanes — bottoms out in a
//! traversal of the compiled d-DNNF (paper §3.2–3.3). The enum arena is
//! the right shape for *building* (hash-consing, transformation passes) but
//! the wrong shape for *executing*: every AND node chases a `Box<[NnfId]>`
//! pointer, every node pays a 24-byte enum decode, literal leaves branch on
//! the weight sign, and every traversal re-allocates its value buffers.
//! [`AcTape`] is a one-time lowering into a flat, topologically-ordered
//! instruction stream with CSR child storage (one contiguous edge buffer
//! plus per-node ranges), constant folding and dead-node pruning, a
//! dedicated two-child AND opcode (the dominant shape exhaustive-DPLL
//! compilation produces), precomputed branch-free literal weight slots, and
//! a literal→slot table that replaces the per-call `HashMap` the
//! differential pass used to build.
//!
//! [`TapeEvaluator`] owns every scratch buffer the kernels need, so after
//! the first call on a given tape no query allocates — and buffers whose
//! every slot is overwritten by a pass are not even re-zeroed between
//! calls. The upward pass, the upward+downward differential pass, the
//! `k`-lane batched variants, and magnitude-guided model sampling all run
//! over this persistent storage.
//!
//! # Determinism contract
//!
//! Every kernel is **bit-for-bit identical** to the enum-walk reference
//! implementation ([`evaluate`](crate::evaluate()),
//! [`evaluate_with_differentials`](crate::evaluate_with_differentials()),
//! [`evaluate_batch`](crate::evaluate_batch()),
//! [`sample_model`](crate::sample_model())): the per-node operation
//! sequence (child order, the zero short-circuit at AND nodes, the
//! zero-partial skip in the downward pass, prefix/suffix products —
//! including the multiplications by exact one the reference performs) is
//! mirrored exactly, and model sampling visits OR nodes in the same order
//! so it consumes the same RNG stream. Lowering only performs
//! transformations that provably preserve bits: dead nodes are pruned
//! (they never contribute), ⊤/⊥ become precomputed constants (the values
//! the reference assigns), and an AND whose children are all constants is
//! folded by running the reference recipe at lowering time. OR nodes are
//! never folded — model sampling draws one random number per OR visit, so
//! removing one would shift the stream.

use crate::evaluate::AcWeights;
use crate::lanes::{blocks_for, LaneBlock, LANE_WIDTH};
use crate::nnf::{Nnf, NnfNode};
use crate::AcWeightsBatch;
use qkc_cnf::Lit;
use qkc_math::{Complex, C_ONE, C_ZERO};
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of unique tape stamps (see [`AcTape::lower`]): lets an evaluator
/// prove its cached value buffer belongs to the tape it is handed, so the
/// delta kernels can refuse stale state without trusting the caller.
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

/// Index of an instruction (node) in an [`AcTape`].
pub type TapeId = u32;

/// Instruction opcodes. Kept small so the dispatch in the hot loops
/// compiles to a dense jump table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TapeOpKind {
    /// A precomputed constant: `a` indexes the tape's constant pool.
    Const = 0,
    /// A literal leaf: `a` is the precomputed
    /// [`AcWeights::slot_of`] weight slot, `b` the literal bit-cast to
    /// `u32`.
    Lit = 1,
    /// A two-child product node: children are the slots `a` and `b`.
    /// Split out from [`TapeOpKind::And`] because exhaustive-DPLL
    /// compilation makes binary ANDs the dominant shape — the unrolled
    /// kernel skips the edge-buffer indirection and loop bookkeeping.
    And2 = 2,
    /// A general product node: children are `edges[a..b]`, in source
    /// order.
    And = 3,
    /// A two-child sum node: children are the slots `a` and `b`.
    Or = 4,
}

/// One fixed-size instruction: opcode plus two payload words. 12 bytes,
/// scanned linearly — no per-node heap indirection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeOp {
    /// The opcode.
    pub kind: TapeOpKind,
    /// First payload word (see [`TapeOpKind`]).
    pub a: u32,
    /// Second payload word (see [`TapeOpKind`]).
    pub b: u32,
}

/// A flat, topologically-ordered compiled circuit: the execution form every
/// evaluator in the stack runs on. Build one per compiled [`Nnf`] with
/// [`AcTape::lower`] and reuse it for the artifact's lifetime.
///
/// # Invariants (established by lowering, relied on by the kernels)
///
/// * children precede parents: every child slot referenced by an
///   instruction is smaller than the instruction's own slot;
/// * every `And` edge range lies within the edge buffer, every `Const`
///   index within the constant pool;
/// * `weight_slots` bounds every `Lit` instruction's weight slot.
#[derive(Debug, Clone)]
pub struct AcTape {
    ops: Vec<TapeOp>,
    /// CSR child buffer: a general AND at slot `i` owns
    /// `edges[ops[i].a .. ops[i].b]`.
    edges: Vec<TapeId>,
    /// Folded constant values, indexed by `Const` payloads.
    consts: Vec<Complex>,
    /// `(literal, slot)` pairs sorted by literal — the precomputed
    /// literal→slot table that replaces the differential pass's per-call
    /// `HashMap`.
    lit_slots: Vec<(Lit, TapeId)>,
    /// Reverse CSR: slot `i`'s parents are
    /// `parents[parent_offsets[i] .. parent_offsets[i + 1]]`. Drives the
    /// delta kernels' dirty-cone propagation.
    parent_offsets: Vec<u32>,
    parents: Vec<TapeId>,
    /// One past the largest weight slot any `Lit` instruction reads: the
    /// minimum [`AcWeights::num_slots`] the kernels accept.
    weight_slots: u32,
    /// Largest product-node arity on the tape (`And2` counts as 2; 0 when
    /// the tape has no product nodes). Derived — computed by lowering and
    /// re-derived at wire decode, never serialized — and used by the
    /// batched downward sweeps to size their suffix-stash scratch once per
    /// pass instead of once per node.
    max_and_arity: u32,
    /// Process-unique identity of this lowering (shared by clones, which
    /// are bit-identical).
    stamp: u64,
    root: TapeId,
}

impl AcTape {
    /// Lowers an [`Nnf`] into tape form: prunes nodes unreachable from the
    /// root, folds constants (exactly — see the module docs), renumbers the
    /// survivors topologically, and packs AND children into one contiguous
    /// edge buffer.
    pub fn lower(nnf: &Nnf) -> Self {
        let n = nnf.num_nodes();
        // Pass 1 (forward): which nodes fold to a constant, and to what.
        // The fold replays the reference evaluation recipe over constant
        // inputs, so a folded value is bitwise the value the enum walk
        // would compute.
        let mut folded: Vec<Option<Complex>> = vec![None; n];
        for (i, node) in nnf.nodes().iter().enumerate() {
            folded[i] = match node {
                NnfNode::True => Some(C_ONE),
                NnfNode::False => Some(C_ZERO),
                NnfNode::Lit(_) => None,
                NnfNode::And(cs) => {
                    if cs.iter().all(|&c| folded[c as usize].is_some()) {
                        let mut acc = C_ONE;
                        for &c in cs.iter() {
                            acc *= folded[c as usize].expect("checked const");
                            if acc == C_ZERO {
                                break;
                            }
                        }
                        Some(acc)
                    } else {
                        None
                    }
                }
                // OR nodes never fold: model sampling draws one random
                // number per OR visit, so folding one would shift the
                // stream.
                NnfNode::Or(..) => None,
            };
        }
        // Pass 2 (backward): mark the nodes the tape must materialize.
        // A folded node needs no children; everything else keeps its
        // children live.
        let mut live = vec![false; n];
        live[nnf.root() as usize] = true;
        for (i, node) in nnf.nodes().iter().enumerate().rev() {
            if !live[i] || folded[i].is_some() {
                continue;
            }
            match node {
                NnfNode::And(cs) => {
                    for &c in cs.iter() {
                        live[c as usize] = true;
                    }
                }
                NnfNode::Or(a, b) => {
                    live[*a as usize] = true;
                    live[*b as usize] = true;
                }
                _ => {}
            }
        }
        // Pass 3 (forward): emit instructions for live nodes in the
        // original topological order, renumbering densely.
        let mut slot_of: Vec<TapeId> = vec![u32::MAX; n];
        let mut ops: Vec<TapeOp> = Vec::new();
        let mut edges: Vec<TapeId> = Vec::new();
        let mut consts: Vec<Complex> = Vec::new();
        let mut lit_slots: Vec<(Lit, TapeId)> = Vec::new();
        let mut weight_slots = 0u32;
        for (i, node) in nnf.nodes().iter().enumerate() {
            if !live[i] {
                continue;
            }
            let slot = ops.len() as TapeId;
            slot_of[i] = slot;
            let op = if let Some(value) = folded[i] {
                let cx = consts.len() as u32;
                consts.push(value);
                TapeOp {
                    kind: TapeOpKind::Const,
                    a: cx,
                    b: 0,
                }
            } else {
                match node {
                    NnfNode::Lit(l) => {
                        lit_slots.push((*l, slot));
                        let wslot = AcWeights::slot_of(*l);
                        weight_slots = weight_slots.max(wslot + 1);
                        TapeOp {
                            kind: TapeOpKind::Lit,
                            a: wslot,
                            b: *l as u32,
                        }
                    }
                    NnfNode::And(cs) if cs.len() == 2 => TapeOp {
                        kind: TapeOpKind::And2,
                        a: slot_of[cs[0] as usize],
                        b: slot_of[cs[1] as usize],
                    },
                    NnfNode::And(cs) => {
                        let start = edges.len() as u32;
                        edges.extend(cs.iter().map(|&c| slot_of[c as usize]));
                        TapeOp {
                            kind: TapeOpKind::And,
                            a: start,
                            b: edges.len() as u32,
                        }
                    }
                    NnfNode::Or(a, b) => TapeOp {
                        kind: TapeOpKind::Or,
                        a: slot_of[*a as usize],
                        b: slot_of[*b as usize],
                    },
                    NnfNode::True | NnfNode::False => unreachable!("constants always fold"),
                }
            };
            ops.push(op);
        }
        lit_slots.sort_unstable_by_key(|&(l, _)| l);
        let (parent_offsets, parents) = build_parent_csr(&ops, &edges);
        Self {
            root: slot_of[nnf.root() as usize],
            max_and_arity: max_and_arity(&ops),
            ops,
            edges,
            consts,
            lit_slots,
            parent_offsets,
            parents,
            weight_slots,
            stamp: NEXT_STAMP.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The instruction stream, children before parents.
    pub fn ops(&self) -> &[TapeOp] {
        &self.ops
    }

    /// Number of instructions (live nodes).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of CSR edges (general-AND child references; binary AND and
    /// OR children live inline in the instruction).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The root instruction slot.
    pub fn root(&self) -> TapeId {
        self.root
    }

    /// The tape slot of a literal leaf, if the literal survives in the
    /// circuit. O(log #lits) over the precomputed slot table.
    #[inline]
    pub fn lit_slot(&self, lit: Lit) -> Option<TapeId> {
        self.lit_slots
            .binary_search_by_key(&lit, |&(l, _)| l)
            .ok()
            .map(|ix| self.lit_slots[ix].1)
    }

    /// The sorted `(literal, slot)` table.
    pub fn lit_slots(&self) -> &[(Lit, TapeId)] {
        &self.lit_slots
    }

    /// The CSR child buffer general-AND instructions index into.
    pub fn edges(&self) -> &[TapeId] {
        &self.edges
    }

    /// The folded constant pool `Const` instructions index into.
    pub fn consts(&self) -> &[Complex] {
        &self.consts
    }

    /// One past the largest weight slot any literal instruction reads: the
    /// minimum [`AcWeights::num_slots`] a weight vector must cover for the
    /// kernels to accept it.
    pub fn required_weight_slots(&self) -> u32 {
        self.weight_slots
    }

    /// Largest product-node arity on the tape (`And2` counts as 2; 0 when
    /// there are no product nodes). Derived at lowering and re-derived at
    /// wire decode.
    pub fn max_and_arity(&self) -> u32 {
        self.max_and_arity
    }

    /// Number of tape slots in the ancestor cone of the given literals
    /// (the literal slots themselves included): the work a delta pass pays
    /// when those literals' weights change. Compile-time planning helper —
    /// enumeration orders that flip small-cone variables most often make
    /// evidence sweeps cheap. Allocates; not for hot paths.
    pub fn cone_size(&self, lits: &[Lit]) -> usize {
        let mut seen = vec![false; self.ops.len()];
        let mut stack: Vec<TapeId> = Vec::with_capacity(lits.len());
        for slot in lits.iter().filter_map(|&l| self.lit_slot(l)) {
            // Dedup the seeds: repeated literals must not double-count.
            if !seen[slot as usize] {
                seen[slot as usize] = true;
                stack.push(slot);
            }
        }
        let mut count = 0usize;
        while let Some(s) = stack.pop() {
            count += 1;
            for &p in self.parents_of(s) {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        count
    }

    /// Exact resident size in bytes: the struct plus every backing buffer.
    /// This is the number the artifact cache accounts under
    /// `ac_size_bytes` (and the natural wire size of the flat format).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.ops.len() * std::mem::size_of::<TapeOp>()
            + self.edges.len() * std::mem::size_of::<TapeId>()
            + self.consts.len() * std::mem::size_of::<Complex>()
            + self.lit_slots.len() * std::mem::size_of::<(Lit, TapeId)>()
            + self.parent_offsets.len() * std::mem::size_of::<u32>()
            + self.parents.len() * std::mem::size_of::<TapeId>()
    }

    /// The parents of a slot (reverse CSR).
    #[inline]
    fn parents_of(&self, slot: TapeId) -> &[TapeId] {
        &self.parents[self.parent_offsets[slot as usize] as usize
            ..self.parent_offsets[slot as usize + 1] as usize]
    }

    /// Panics unless `weights` covers every weight slot the tape reads —
    /// the single bounds check each kernel pass performs up front so its
    /// per-node loop can index weights without rechecking.
    #[inline]
    fn check_weights(&self, num_slots: usize) {
        assert!(
            self.weight_slots as usize <= num_slots,
            "weight vector covers {num_slots} slots but the tape reads {}",
            self.weight_slots
        );
    }

    /// Serializes the tape into its versioned, checksummed wire format —
    /// the on-disk / over-the-wire form of a compiled artifact (spill
    /// files, distributed sweep sharding).
    ///
    /// Layout (little-endian): magic `QKTP`, format version, root /
    /// weight-slot words, four section counts, then the four flat sections
    /// exactly as resident — fixed-width ops (opcode byte + two payload
    /// words), CSR edge buffer, constant pool (IEEE-754 bit patterns, so
    /// round-trips are bit-exact), sorted literal→slot table — and a
    /// trailing FNV-1a checksum over everything before it. The parent CSR
    /// and the process-unique stamp are *not* serialized: both are derived
    /// (and re-derived cheaply) by [`AcTape::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            WIRE_HEADER_BYTES
                + self.ops.len() * 9
                + self.edges.len() * 4
                + self.consts.len() * 16
                + self.lit_slots.len() * 8
                + 8,
        );
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&self.root.to_le_bytes());
        out.extend_from_slice(&self.weight_slots.to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.edges.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.consts.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.lit_slots.len() as u32).to_le_bytes());
        for op in &self.ops {
            out.push(op.kind as u8);
            out.extend_from_slice(&op.a.to_le_bytes());
            out.extend_from_slice(&op.b.to_le_bytes());
        }
        for &e in &self.edges {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for c in &self.consts {
            out.extend_from_slice(&c.re.to_bits().to_le_bytes());
            out.extend_from_slice(&c.im.to_bits().to_le_bytes());
        }
        for &(l, s) in &self.lit_slots {
            out.extend_from_slice(&l.to_le_bytes());
            out.extend_from_slice(&s.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserializes a tape from [`AcTape::to_bytes`] output.
    ///
    /// Every kernel invariant the lowering establishes is re-validated
    /// here — children precede parents, edge ranges and constant indices
    /// in bounds, literal slots pointing at matching `Lit` instructions in
    /// strictly increasing literal order — so a decoded tape is as safe to
    /// execute as a freshly lowered one, and a hostile or bit-rotted
    /// payload is rejected with an error rather than trusted. The decoded
    /// tape is bit-for-bit equivalent to the encoded one under every
    /// evaluator kernel; it carries a fresh stamp (evaluator delta caches
    /// never confuse it with the original).
    ///
    /// # Errors
    ///
    /// [`TapeDecodeError`] on wrong magic, unsupported version, truncated
    /// or oversized payload, checksum mismatch, or any structural
    /// violation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TapeDecodeError> {
        if bytes.len() < 4 {
            return Err(TapeDecodeError::Truncated);
        }
        if bytes[..4] != WIRE_MAGIC {
            return Err(TapeDecodeError::BadMagic);
        }
        if bytes.len() < WIRE_HEADER_BYTES + 8 {
            return Err(TapeDecodeError::Truncated);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != WIRE_VERSION {
            return Err(TapeDecodeError::UnsupportedVersion(version));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        if fnv1a(body) != u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes")) {
            return Err(TapeDecodeError::ChecksumMismatch);
        }
        let mut rd = WireReader {
            buf: body,
            pos: WIRE_MAGIC.len() + 4,
        };
        let root = rd.u32()?;
        let weight_slots = rd.u32()?;
        let n_ops = rd.u32()? as usize;
        let n_edges = rd.u32()? as usize;
        let n_consts = rd.u32()? as usize;
        let n_lits = rd.u32()? as usize;
        let expect = WIRE_HEADER_BYTES as u64
            + n_ops as u64 * 9
            + n_edges as u64 * 4
            + n_consts as u64 * 16
            + n_lits as u64 * 8;
        if (body.len() as u64) < expect {
            return Err(TapeDecodeError::Truncated);
        }
        if body.len() as u64 > expect {
            return Err(TapeDecodeError::Malformed("trailing bytes"));
        }
        if n_ops == 0 {
            return Err(TapeDecodeError::Malformed("empty instruction stream"));
        }
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let kind = match rd.u8()? {
                0 => TapeOpKind::Const,
                1 => TapeOpKind::Lit,
                2 => TapeOpKind::And2,
                3 => TapeOpKind::And,
                4 => TapeOpKind::Or,
                _ => return Err(TapeDecodeError::Malformed("unknown opcode")),
            };
            let a = rd.u32()?;
            let b = rd.u32()?;
            ops.push(TapeOp { kind, a, b });
        }
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            edges.push(rd.u32()?);
        }
        let mut consts = Vec::with_capacity(n_consts);
        for _ in 0..n_consts {
            let re = f64::from_bits(rd.u64()?);
            let im = f64::from_bits(rd.u64()?);
            consts.push(Complex::new(re, im));
        }
        let mut lit_slots: Vec<(Lit, TapeId)> = Vec::with_capacity(n_lits);
        for _ in 0..n_lits {
            let lit = rd.u32()? as i32;
            let slot = rd.u32()?;
            lit_slots.push((lit, slot));
        }
        // Structural validation: re-establish every lowering invariant the
        // kernels index by without bounds checks they can't afford. The
        // checks are the verifier's tape well-formedness pass
        // (`crate::verify`), shared so decode hardening and static
        // verification cannot drift; decode rejects on the first
        // violation, in the pass's (historical) check order.
        if let Some(v) = crate::verify::structural_violations(
            &ops,
            &edges,
            &consts,
            &lit_slots,
            root,
            weight_slots,
        )
        .into_iter()
        .next()
        {
            return Err(TapeDecodeError::Malformed(v.what));
        }
        let (parent_offsets, parents) = build_parent_csr(&ops, &edges);
        Ok(Self {
            max_and_arity: max_and_arity(&ops),
            ops,
            edges,
            consts,
            lit_slots,
            parent_offsets,
            parents,
            weight_slots,
            stamp: NEXT_STAMP.fetch_add(1, Ordering::Relaxed),
            root,
        })
    }
}

/// The largest product-node arity in an instruction stream (see
/// [`AcTape::max_and_arity`]). Shared by lowering and wire decoding so the
/// derived value can never drift between the two construction paths.
fn max_and_arity(ops: &[TapeOp]) -> u32 {
    ops.iter()
        .map(|op| match op.kind {
            TapeOpKind::And2 => 2,
            TapeOpKind::And => op.b - op.a,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Wire-format constants: magic, version, and the fixed header size
/// (magic + version + reserved + root + weight_slots + four counts).
const WIRE_MAGIC: [u8; 4] = *b"QKTP";
/// Current [`AcTape`] wire-format version; bumped on any layout change so
/// old readers reject new payloads cleanly (and vice versa).
pub const WIRE_VERSION: u16 = 1;
const WIRE_HEADER_BYTES: usize = 4 + 2 + 2 + 4 + 4 + 4 * 4;

/// FNV-1a over the payload: cheap, dependency-free corruption detection
/// (not cryptographic — the trust boundary is same-operator storage).
/// Shared by every QKC wire format (re-exported as
/// [`wire_checksum`](crate::wire_checksum)) so the trailer algorithm can
/// never diverge between the tape and artifact payloads.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounds-checked little-endian reads over a wire payload.
struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl WireReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], TapeDecodeError> {
        let end = self.pos.checked_add(n).ok_or(TapeDecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(TapeDecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, TapeDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TapeDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, TapeDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Why a wire payload was rejected by [`AcTape::from_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeDecodeError {
    /// The payload does not start with the tape magic.
    BadMagic,
    /// The payload's format version is not one this build reads.
    UnsupportedVersion(u16),
    /// The payload ends before its sections do.
    Truncated,
    /// The trailing checksum does not match the payload.
    ChecksumMismatch,
    /// A section is internally inconsistent (the contained invariant).
    Malformed(&'static str),
}

impl std::fmt::Display for TapeDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapeDecodeError::BadMagic => write!(f, "not an AcTape payload (bad magic)"),
            TapeDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported AcTape wire version {v}")
            }
            TapeDecodeError::Truncated => write!(f, "truncated AcTape payload"),
            TapeDecodeError::ChecksumMismatch => write!(f, "AcTape payload checksum mismatch"),
            TapeDecodeError::Malformed(what) => write!(f, "malformed AcTape payload: {what}"),
        }
    }
}

impl std::error::Error for TapeDecodeError {}

/// Builds the reverse CSR (children → parents) that drives the delta
/// kernels' dirty-cone propagation. Shared by lowering and wire decoding —
/// the parent CSR is always derived, never trusted from a payload.
fn build_parent_csr(ops: &[TapeOp], edges: &[TapeId]) -> (Vec<u32>, Vec<TapeId>) {
    let n_ops = ops.len();
    let mut parent_offsets = vec![0u32; n_ops + 1];
    let count_child = |c: TapeId, offsets: &mut Vec<u32>| {
        offsets[c as usize + 1] += 1;
    };
    for op in ops {
        match op.kind {
            TapeOpKind::And2 | TapeOpKind::Or => {
                count_child(op.a, &mut parent_offsets);
                count_child(op.b, &mut parent_offsets);
            }
            TapeOpKind::And => {
                for &c in &edges[op.a as usize..op.b as usize] {
                    count_child(c, &mut parent_offsets);
                }
            }
            _ => {}
        }
    }
    for i in 0..n_ops {
        parent_offsets[i + 1] += parent_offsets[i];
    }
    let mut parents = vec![0 as TapeId; *parent_offsets.last().unwrap() as usize];
    let mut fill = parent_offsets.clone();
    for (i, op) in ops.iter().enumerate() {
        let mut place = |c: TapeId, fill: &mut Vec<u32>| {
            parents[fill[c as usize] as usize] = i as TapeId;
            fill[c as usize] += 1;
        };
        match op.kind {
            TapeOpKind::And2 | TapeOpKind::Or => {
                place(op.a, &mut fill);
                place(op.b, &mut fill);
            }
            TapeOpKind::And => {
                for &c in &edges[op.a as usize..op.b as usize] {
                    place(c, &mut fill);
                }
            }
            _ => {}
        }
    }
    (parent_offsets, parents)
}

/// A reusable evaluator over [`AcTape`]s: owns every value/partial/scratch
/// buffer the kernels need, so queries after the first allocation-warming
/// call are zero-alloc. One evaluator serves tapes of any size (buffers
/// grow monotonically); it is cheap to construct and intended to be kept
/// alongside whatever owns the query loop (a bound artifact, a Gibbs
/// chain, a sweep lane).
#[derive(Debug, Default)]
pub struct TapeEvaluator {
    /// Per-slot scalar values. Grow-only and never re-zeroed: every pass
    /// overwrites every slot it reads.
    values: Vec<Complex>,
    /// Per-slot scalar partial derivatives of the root (zeroed per pass —
    /// the downward sweep accumulates into it).
    partials: Vec<Complex>,
    /// Prefix products for the scalar downward AND sweep (child-major).
    prefix: Vec<Complex>,
    /// Per-slot lane-blocked values for the batch kernels (node-major,
    /// `⌈k/W⌉` [`LaneBlock`]s per slot). Grow-only, like `values`.
    bvalues: Vec<LaneBlock>,
    /// Per-slot lane-blocked partials for the batch downward sweeps.
    bpartials: Vec<LaneBlock>,
    /// Blocked suffix-stash / suffix / accumulator / partial-copy scratch
    /// for the batch downward sweeps. `bprefix` is sized once per pass
    /// from the tape's [`AcTape::max_and_arity`].
    bprefix: Vec<LaneBlock>,
    bsuffix: Vec<LaneBlock>,
    bacc: Vec<LaneBlock>,
    bpcopy: Vec<LaneBlock>,
    /// Unpacked live lanes of the batch root row — the persistent backing
    /// of the `&[Complex]` slices the batch upward passes return.
    root_out: Vec<Complex>,
    /// Per-slot magnitudes for model sampling. Grow-only, fully
    /// overwritten by each magnitude pass.
    mags: Vec<f64>,
    /// Descent stack for model sampling.
    stack: Vec<TapeId>,
    /// Lane count the `partials` buffer was filled for (scalar passes use
    /// 1); guards the `wrt_*` accessors. Tracked separately from
    /// `value_lanes` because a value-only pass (e.g. a batched upward)
    /// leaves earlier partials intact at their own stride.
    partial_lanes: usize,
    /// Lane count the `values` buffer was filled for (scalar passes use 1).
    value_lanes: usize,
    /// What the `values` buffer currently holds (and for which tape) —
    /// the validity gate for the delta kernels.
    values_mode: ValuesMode,
    values_stamp: u64,
    /// Delta worklist membership flags (persistent; all false between
    /// calls).
    queued: Vec<bool>,
}

/// What arithmetic the `values` buffer was produced by. The two scalar
/// modes differ in zero-sign bits (the short-circuited AND stops
/// multiplying zeros), so a delta pass may only extend a buffer of its own
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ValuesMode {
    /// No usable scalar buffer (fresh evaluator, or a batch pass
    /// overwrote it with lane-strided data).
    #[default]
    Invalid,
    /// Short-circuited upward values ([`TapeEvaluator::evaluate`]).
    Evaluate,
    /// Full-product upward values (the differential passes).
    DiffUpward,
    /// Lane-strided short-circuited upward values
    /// ([`TapeEvaluator::evaluate_batch`]); valid for batch delta passes
    /// with the same lane count.
    BatchEvaluate,
    /// Lane-strided full-product upward values (the batch differential
    /// passes); valid for batch differential delta passes with the same
    /// lane count.
    BatchDiffUpward,
}

impl TapeEvaluator {
    /// A fresh evaluator with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows `values` to at least `len` slots without re-zeroing live
    /// ones: callers overwrite every slot they read.
    #[inline]
    fn ensure_values(&mut self, len: usize) {
        if self.values.len() < len {
            self.values.resize(len, C_ZERO);
        }
    }

    /// Upward pass: the circuit's value under `weights`. Bit-for-bit equal
    /// to [`evaluate`](crate::evaluate()) on the source [`Nnf`]. Zero
    /// allocations after the first call at a given size.
    pub fn evaluate(&mut self, tape: &AcTape, weights: &AcWeights) -> Complex {
        tape.check_weights(weights.num_slots());
        let n = tape.ops.len();
        self.ensure_values(n);
        let values = &mut self.values[..n];
        // Safe indexing throughout: the bounds checks measurably help LLVM
        // here (range information), and the lowering invariants make them
        // never fail.
        for (i, op) in tape.ops.iter().enumerate() {
            values[i] = match op.kind {
                TapeOpKind::Const => tape.consts[op.a as usize],
                TapeOpKind::Lit => weights.by_slot(op.a),
                TapeOpKind::And2 => {
                    // The reference loop unrolled for two children:
                    // acc = 1·v₀ (short-circuit) then acc·v₁.
                    let mut acc = C_ONE * values[op.a as usize];
                    if acc != C_ZERO {
                        acc *= values[op.b as usize];
                    }
                    acc
                }
                TapeOpKind::And => {
                    let mut acc = C_ONE;
                    for &c in &tape.edges[op.a as usize..op.b as usize] {
                        acc *= values[c as usize];
                        if acc == C_ZERO {
                            break;
                        }
                    }
                    acc
                }
                TapeOpKind::Or => values[op.a as usize] + values[op.b as usize],
            };
        }
        self.values_mode = ValuesMode::Evaluate;
        self.values_stamp = tape.stamp;
        self.value_lanes = 1;
        values[tape.root as usize]
    }

    /// [`evaluate`](TapeEvaluator::evaluate) when only the weights of
    /// `changed_vars` differ from the weights of this evaluator's previous
    /// scalar upward pass on the same tape: recomputes just the dirty cone
    /// above the changed literals (propagation stops where a recomputed
    /// value is bit-identical to the cached one), which is what makes
    /// repeated amplitude queries — wavefunction sweeps, probability
    /// reconstructions, chain moves — cheap on the compiled artifact.
    ///
    /// Falls back to a full pass when the cached buffer is missing, was
    /// produced by a different kernel mode, or belongs to another tape, so
    /// it is always safe to call. Bit-for-bit equal to a full
    /// [`evaluate`](TapeEvaluator::evaluate): every recomputed slot is a
    /// pure function of its children, by induction over the topological
    /// order.
    ///
    /// The caller must list **every** variable whose weights changed since
    /// the previous pass (listing unchanged ones is harmless).
    pub fn evaluate_delta(
        &mut self,
        tape: &AcTape,
        weights: &AcWeights,
        changed_vars: &[u32],
    ) -> Complex {
        if self.values_mode != ValuesMode::Evaluate || self.values_stamp != tape.stamp {
            return self.evaluate(tape, weights);
        }
        tape.check_weights(weights.num_slots());
        self.delta_update(tape, weights, changed_vars, false);
        self.values[tape.root as usize]
    }

    /// Recomputes the dirty cone above `changed_vars` in `values`,
    /// propagating only past slots whose bits actually changed.
    /// `full_products` selects the differential-mode AND (no
    /// short-circuit).
    ///
    /// The worklist is a flag scan, not a priority queue: dirty flags are
    /// seeded at the changed literals, and one ascending sweep from the
    /// lowest dirty slot processes them — children precede parents, so
    /// every dirty slot sees fully updated children, and a pending counter
    /// stops the sweep as soon as propagation dies out. A clean slot
    /// costs one flag test; a dirty one, one node recompute.
    fn delta_update(
        &mut self,
        tape: &AcTape,
        weights: &AcWeights,
        changed_vars: &[u32],
        full_products: bool,
    ) {
        let n = tape.ops.len();
        if self.queued.len() < n {
            self.queued.resize(n, false);
        }
        let mut pending = 0usize;
        let mut cursor = n;
        for &v in changed_vars {
            for lit in [v as Lit, -(v as Lit)] {
                if let Some(slot) = tape.lit_slot(lit) {
                    if !self.queued[slot as usize] {
                        self.queued[slot as usize] = true;
                        pending += 1;
                        cursor = cursor.min(slot as usize);
                    }
                }
            }
        }
        while pending > 0 {
            if !self.queued[cursor] {
                cursor += 1;
                continue;
            }
            self.queued[cursor] = false;
            pending -= 1;
            let op = tape.ops[cursor];
            let values = &self.values;
            let new = match op.kind {
                TapeOpKind::Const => tape.consts[op.a as usize],
                TapeOpKind::Lit => weights.by_slot(op.a),
                TapeOpKind::And2 => {
                    let mut acc = C_ONE * values[op.a as usize];
                    if full_products || acc != C_ZERO {
                        acc *= values[op.b as usize];
                    }
                    acc
                }
                TapeOpKind::And => {
                    let mut acc = C_ONE;
                    for &c in &tape.edges[op.a as usize..op.b as usize] {
                        acc *= values[c as usize];
                        if !full_products && acc == C_ZERO {
                            break;
                        }
                    }
                    acc
                }
                TapeOpKind::Or => values[op.a as usize] + values[op.b as usize],
            };
            let old = self.values[cursor];
            if new.re.to_bits() != old.re.to_bits() || new.im.to_bits() != old.im.to_bits() {
                self.values[cursor] = new;
                for &p in tape.parents_of(cursor as TapeId) {
                    if !self.queued[p as usize] {
                        self.queued[p as usize] = true;
                        pending += 1;
                    }
                }
            }
            cursor += 1;
        }
    }

    /// Combined upward + downward pass: returns the root value and leaves
    /// the partial derivative of the root with respect to every slot in
    /// this evaluator, readable through [`TapeEvaluator::wrt_lit`] /
    /// [`TapeEvaluator::wrt_slot`] until the next pass. Bit-for-bit equal
    /// to [`evaluate_with_differentials`](crate::evaluate_with_differentials())
    /// (same full AND products upward, same prefix/suffix sweep and
    /// zero-partial skip downward — including the reference's
    /// multiplications by exact one). Zero allocations after warmup.
    pub fn differentials(&mut self, tape: &AcTape, weights: &AcWeights) -> Complex {
        tape.check_weights(weights.num_slots());
        self.upward_full_products(tape, weights);
        self.downward(tape)
    }

    /// The full-product upward half shared by the differential passes:
    /// fills `values` with every slot's value (no AND short-circuit) and
    /// flags the buffer for delta reuse.
    fn upward_full_products(&mut self, tape: &AcTape, weights: &AcWeights) {
        let n = tape.ops.len();
        self.ensure_values(n);
        let values = &mut self.values[..n];
        for (i, op) in tape.ops.iter().enumerate() {
            values[i] = match op.kind {
                TapeOpKind::Const => tape.consts[op.a as usize],
                TapeOpKind::Lit => weights.by_slot(op.a),
                TapeOpKind::And2 => {
                    // Full product (no short-circuit): (1·v₀)·v₁.
                    C_ONE * values[op.a as usize] * values[op.b as usize]
                }
                TapeOpKind::And => {
                    let mut acc = C_ONE;
                    for &c in &tape.edges[op.a as usize..op.b as usize] {
                        acc *= values[c as usize];
                    }
                    acc
                }
                TapeOpKind::Or => values[op.a as usize] + values[op.b as usize],
            };
        }
        self.values_mode = ValuesMode::DiffUpward;
        self.values_stamp = tape.stamp;
        self.value_lanes = 1;
    }

    /// [`differentials`](TapeEvaluator::differentials) when only the
    /// weights of `changed_vars` differ from this evaluator's previous
    /// differential pass on the same tape: the upward half updates just
    /// the dirty cone (see
    /// [`evaluate_delta`](TapeEvaluator::evaluate_delta)); the downward
    /// half always runs in full (the root partial flows everywhere).
    /// One Gibbs transition changes one variable's evidence, so the chain
    /// rides this almost every step.
    ///
    /// Falls back to a full pass when the cached buffer is unusable.
    /// Bit-for-bit equal to a full
    /// [`differentials`](TapeEvaluator::differentials) pass.
    pub fn differentials_delta(
        &mut self,
        tape: &AcTape,
        weights: &AcWeights,
        changed_vars: &[u32],
    ) -> Complex {
        if self.values_mode != ValuesMode::DiffUpward || self.values_stamp != tape.stamp {
            return self.differentials(tape, weights);
        }
        tape.check_weights(weights.num_slots());
        self.delta_update(tape, weights, changed_vars, true);
        self.downward(tape)
    }

    /// [`differentials`](TapeEvaluator::differentials) with the downward
    /// half restricted to a precomputed ancestor cone: partials at every
    /// cone slot (in particular the cone's seed slots) are bit-for-bit the
    /// full pass's, while the often much larger rest of the tape is never
    /// visited. Slots *outside* the cone keep stale partials — read the
    /// result only through plans whose slots seeded the cone
    /// ([`contract_tangent`](TapeEvaluator::contract_tangent)); the general
    /// [`wrt_lit`](TapeEvaluator::wrt_lit) /
    /// [`take_differentials`](TapeEvaluator::take_differentials) accessors
    /// require a full pass.
    pub fn differentials_cone(
        &mut self,
        tape: &AcTape,
        weights: &AcWeights,
        cone: &DiffCone,
    ) -> Complex {
        tape.check_weights(weights.num_slots());
        self.upward_full_products(tape, weights);
        self.downward_cone(tape, cone)
    }

    /// [`differentials_delta`](TapeEvaluator::differentials_delta) with the
    /// downward half restricted to `cone` — the analytic-gradient hot loop.
    /// A Gray-adjacent evidence flip pays one dirty-cone upward delta plus
    /// one downward sweep over the tangent literals' ancestors, instead of
    /// two full tape scans. Same partials-validity caveat as
    /// [`differentials_cone`](TapeEvaluator::differentials_cone); same
    /// full-pass fallback as
    /// [`differentials_delta`](TapeEvaluator::differentials_delta).
    pub fn differentials_cone_delta(
        &mut self,
        tape: &AcTape,
        weights: &AcWeights,
        changed_vars: &[u32],
        cone: &DiffCone,
    ) -> Complex {
        if self.values_mode != ValuesMode::DiffUpward || self.values_stamp != tape.stamp {
            return self.differentials_cone(tape, weights, cone);
        }
        tape.check_weights(weights.num_slots());
        self.delta_update(tape, weights, changed_vars, true);
        self.downward_cone(tape, cone)
    }

    /// The downward sweep restricted to an ancestor cone. Every parent of
    /// a cone slot is itself a cone slot (the cone is an ancestor
    /// closure), so each cone slot receives exactly the contributions the
    /// full sweep gives it — same descending order, same zero-partial
    /// skip, same per-node multiplication sequence — and its partial is
    /// bit-for-bit the full sweep's.
    fn downward_cone(&mut self, tape: &AcTape, cone: &DiffCone) -> Complex {
        debug_assert_eq!(cone.stamp, tape.stamp, "cone built for a different tape");
        let n = tape.ops.len();
        let values = &self.values[..n];
        if self.partials.len() < n {
            self.partials.resize(n, C_ZERO);
        }
        self.partial_lanes = 1;
        let partials = &mut self.partials[..n];
        for &s in &cone.slots {
            partials[s as usize] = C_ZERO;
        }
        if cone.slots.is_empty() {
            return values[tape.root as usize];
        }
        partials[tape.root as usize] = C_ONE;
        for &slot in cone.slots.iter().rev() {
            let i = slot as usize;
            let p = partials[i];
            if p == C_ZERO {
                continue;
            }
            let op = tape.ops[i];
            match op.kind {
                TapeOpKind::And2 => {
                    let va = values[op.a as usize];
                    let vb = values[op.b as usize];
                    if cone.member[op.a as usize] {
                        partials[op.a as usize] += p * (C_ONE * vb);
                    }
                    if cone.member[op.b as usize] {
                        partials[op.b as usize] += (p * va) * C_ONE;
                    }
                }
                TapeOpKind::And => {
                    let cs = &tape.edges[op.a as usize..op.b as usize];
                    // Stash the suffix from the right; the forward sweep
                    // then carries pq = p·(prefix product) so each member
                    // contribution costs a single multiply.
                    self.prefix.clear();
                    self.prefix.resize(cs.len(), C_ONE);
                    // The suffix accumulates over every child (the product
                    // sequence must match the full sweep's); only the adds
                    // into non-cone children are skipped — they can never
                    // flow back into a cone slot.
                    let mut suffix = C_ONE;
                    for (k, &c) in cs.iter().enumerate().rev() {
                        self.prefix[k] = suffix;
                        suffix *= values[c as usize];
                    }
                    let mut pq = p;
                    for (k, &c) in cs.iter().enumerate() {
                        if cone.member[c as usize] {
                            partials[c as usize] += pq * self.prefix[k];
                        }
                        pq *= values[c as usize];
                    }
                }
                TapeOpKind::Or => {
                    if cone.member[op.a as usize] {
                        partials[op.a as usize] += p;
                    }
                    if cone.member[op.b as usize] {
                        partials[op.b as usize] += p;
                    }
                }
                _ => {}
            }
        }
        values[tape.root as usize]
    }

    /// The downward (partial-derivative) sweep over the current
    /// full-product `values` buffer. Returns the root value.
    fn downward(&mut self, tape: &AcTape) -> Complex {
        let n = tape.ops.len();
        let values = &self.values[..n];
        if self.partials.len() < n {
            self.partials.resize(n, C_ZERO);
        }
        self.partial_lanes = 1;
        let partials = &mut self.partials[..n];
        partials.fill(C_ZERO);
        partials[tape.root as usize] = C_ONE;
        for (i, op) in tape.ops.iter().enumerate().rev() {
            let p = partials[i];
            if p == C_ZERO {
                continue;
            }
            match op.kind {
                TapeOpKind::And2 => {
                    // The reference suffix-stash/pq sweep unrolled for two
                    // children, keeping its exact multiplication sequence:
                    // suffix stash = [1·v₁, 1], pq = p then p·v₀.
                    let va = values[op.a as usize];
                    let vb = values[op.b as usize];
                    partials[op.a as usize] += p * (C_ONE * vb);
                    partials[op.b as usize] += (p * va) * C_ONE;
                }
                TapeOpKind::And => {
                    let cs = &tape.edges[op.a as usize..op.b as usize];
                    // Stash the suffix Π_{j>k} v_j from the right; the
                    // forward sweep then carries pq = p·Π_{j<k} v_j so each
                    // child's contribution pq·suffix[k] costs a single
                    // multiply (exact with zero children — no divisions).
                    self.prefix.clear();
                    self.prefix.resize(cs.len(), C_ONE);
                    let mut suffix = C_ONE;
                    for (k, &c) in cs.iter().enumerate().rev() {
                        self.prefix[k] = suffix;
                        suffix *= values[c as usize];
                    }
                    let mut pq = p;
                    for (k, &c) in cs.iter().enumerate() {
                        partials[c as usize] += pq * self.prefix[k];
                        pq *= values[c as usize];
                    }
                }
                TapeOpKind::Or => {
                    partials[op.a as usize] += p;
                    partials[op.b as usize] += p;
                }
                _ => {}
            }
        }
        values[tape.root as usize]
    }

    /// `∂f/∂w(lit)` from the most recent scalar
    /// [`differentials`](TapeEvaluator::differentials) pass: the amplitude
    /// of the same query with `lit`'s variable re-assigned to satisfy `lit`
    /// (Darwiche's differential semantics). `None` if the literal does not
    /// appear in the circuit. No per-call allocation — the literal→slot
    /// table was built at lowering time.
    #[inline]
    pub fn wrt_lit(&self, tape: &AcTape, lit: Lit) -> Option<Complex> {
        debug_assert_eq!(self.partial_lanes, 1, "scalar read after batch pass");
        tape.lit_slot(lit).map(|s| self.partials[s as usize])
    }

    /// The partial derivative of the root with respect to tape slot `slot`
    /// from the most recent scalar differentials pass.
    #[inline]
    pub fn wrt_slot(&self, slot: TapeId) -> Complex {
        debug_assert_eq!(self.partial_lanes, 1, "scalar read after batch pass");
        self.partials[slot as usize]
    }

    /// Snapshot of the most recent scalar differentials pass, owning its
    /// partials, for callers that must outlive the evaluator borrow (the
    /// diagnosis queries). Hot paths use
    /// [`wrt_lit`](TapeEvaluator::wrt_lit) directly instead.
    pub fn take_differentials<'t>(
        &self,
        tape: &'t AcTape,
        value: Complex,
    ) -> TapeDifferentials<'t> {
        debug_assert_eq!(self.partial_lanes, 1, "scalar snapshot after batch pass");
        TapeDifferentials {
            value,
            partials: self.partials[..tape.ops.len()].to_vec(),
            tape,
        }
    }

    /// Grows the blocked value buffer to at least `len` blocks without
    /// re-zeroing live ones: the batch passes overwrite every row they
    /// read.
    #[inline]
    fn ensure_bvalues(&mut self, len: usize) {
        if self.bvalues.len() < len {
            self.bvalues.resize(len, LaneBlock::ZERO);
        }
    }

    /// Unpacks the live lanes of the root's block row into the persistent
    /// `root_out` buffer and returns it.
    fn unpack_root(&mut self, tape: &AcTape, nb: usize, k: usize) -> &[Complex] {
        crate::batch::unpack_row(&self.bvalues, tape.root as usize, nb, k, &mut self.root_out);
        &self.root_out
    }

    /// Batched upward pass over `k` weight lanes: one tape scan updating
    /// `⌈k/W⌉` lane blocks per slot, each a fixed-width split-plane loop
    /// the compiler vectorizes. Returns the `k` root values; lane `l` is
    /// bit-for-bit the scalar [`evaluate`](TapeEvaluator::evaluate) of
    /// that lane's weights (mirroring
    /// [`evaluate_batch`](crate::evaluate_batch()): per-lane zero
    /// short-circuit as a select, whole-AND break once every lane is
    /// dead).
    pub fn evaluate_batch(&mut self, tape: &AcTape, weights: &AcWeightsBatch) -> &[Complex] {
        let k = weights.lanes();
        if k == 0 {
            return &[];
        }
        tape.check_weights(weights.num_slots());
        let n = tape.ops.len();
        let nb = weights.blocks_per_row();
        self.ensure_bvalues(n * nb);
        self.value_lanes = k;
        self.values_mode = ValuesMode::BatchEvaluate;
        self.values_stamp = tape.stamp;
        batch_upward(tape, weights, &mut self.bvalues[..n * nb], nb);
        self.unpack_root(tape, nb, k)
    }

    /// [`evaluate_batch`](TapeEvaluator::evaluate_batch) when only the
    /// weights of `changed_vars` differ from this evaluator's previous
    /// batched upward pass on the same tape (same lane count): recomputes
    /// just the dirty cone above the changed literals, with **one**
    /// instruction decode per dirty slot updating all `k` lanes — the
    /// delta-aware batch lane kernel. Evidence sweeps whose evidence is
    /// shared across lanes (Gray-ordered basis enumerations over per-lane
    /// parameter bindings — batched wavefunctions, probabilities,
    /// expectations, gradient lanes) ride this: the per-slot decode that
    /// the scalar delta path pays once per lane is paid once per batch.
    ///
    /// Falls back to a full [`evaluate_batch`](TapeEvaluator::evaluate_batch)
    /// when the cached buffer is missing, was produced by another kernel
    /// mode or tape, or has a different lane count, so it is always safe to
    /// call. Lane `l` is bit-for-bit the scalar
    /// [`evaluate`](TapeEvaluator::evaluate) of that lane's weights: every
    /// recomputed slot runs the batch kernel's per-lane arithmetic (itself
    /// bit-identical to scalar), and propagation past a slot stops only
    /// when **every** lane's bits are unchanged — a pure function of
    /// unchanged children, by induction over the topological order.
    ///
    /// The caller must list every variable whose weights changed in **any**
    /// lane since the previous pass (listing unchanged ones is harmless).
    pub fn evaluate_batch_delta(
        &mut self,
        tape: &AcTape,
        weights: &AcWeightsBatch,
        changed_vars: &[u32],
    ) -> &[Complex] {
        let k = weights.lanes();
        if k == 0 {
            return &[];
        }
        if self.values_mode != ValuesMode::BatchEvaluate
            || self.values_stamp != tape.stamp
            || self.value_lanes != k
        {
            return self.evaluate_batch(tape, weights);
        }
        tape.check_weights(weights.num_slots());
        let nb = weights.blocks_per_row();
        self.delta_update_batch(tape, weights, changed_vars, nb, false);
        self.unpack_root(tape, nb, k)
    }

    /// The batched analogue of [`delta_update`](TapeEvaluator::delta_update):
    /// one ascending flag-scan sweep recomputing dirty slot *rows* (all `k`
    /// lanes) with a single decode each, propagating to parents when any
    /// lane's bits changed. `full_products` selects the differential
    /// passes' no-short-circuit AND arithmetic, exactly as in the scalar
    /// kernel.
    fn delta_update_batch(
        &mut self,
        tape: &AcTape,
        weights: &AcWeightsBatch,
        changed_vars: &[u32],
        nb: usize,
        full_products: bool,
    ) {
        let n = tape.ops.len();
        if self.queued.len() < n {
            self.queued.resize(n, false);
        }
        let mut pending = 0usize;
        let mut cursor = n;
        for &v in changed_vars {
            for lit in [v as Lit, -(v as Lit)] {
                if let Some(slot) = tape.lit_slot(lit) {
                    if !self.queued[slot as usize] {
                        self.queued[slot as usize] = true;
                        pending += 1;
                        cursor = cursor.min(slot as usize);
                    }
                }
            }
        }
        // Row scratch: the candidate new blocks of the slot being
        // recomputed (all lanes), compared bitwise against the cached
        // row before overwriting. Dead remainder lanes are deterministic
        // functions of the zero-filled weights, so whole-block bitwise
        // comparison stays sound for ragged batches.
        self.bacc.clear();
        self.bacc.resize(nb, LaneBlock::ZERO);
        while pending > 0 {
            if !self.queued[cursor] {
                cursor += 1;
                continue;
            }
            self.queued[cursor] = false;
            pending -= 1;
            let op = tape.ops[cursor];
            let row = cursor * nb;
            {
                // Disjoint field borrows: children are read from `bvalues`
                // (all at slots < cursor), the candidate row lands in `bacc`.
                let values = &self.bvalues;
                let out = &mut self.bacc[..nb];
                match op.kind {
                    TapeOpKind::Const => out.fill(LaneBlock::splat(tape.consts[op.a as usize])),
                    TapeOpKind::Lit => out.copy_from_slice(weights.row_blocks_by_slot(op.a)),
                    TapeOpKind::And2 => {
                        let arow = &values[op.a as usize * nb..op.a as usize * nb + nb];
                        let brow = &values[op.b as usize * nb..op.b as usize * nb + nb];
                        for (acc, (x, y)) in out.iter_mut().zip(arow.iter().zip(brow)) {
                            *acc = LaneBlock::one_times(x);
                            if full_products {
                                acc.mul_assign(y);
                            } else {
                                acc.mul_assign_sc(y);
                            }
                        }
                    }
                    TapeOpKind::And => {
                        out.fill(LaneBlock::ONE);
                        for &c in &tape.edges[op.a as usize..op.b as usize] {
                            if !full_products && out.iter().all(LaneBlock::all_zero) {
                                break;
                            }
                            let child = &values[c as usize * nb..c as usize * nb + nb];
                            for (acc, v) in out.iter_mut().zip(child) {
                                if full_products {
                                    acc.mul_assign(v);
                                } else {
                                    acc.mul_assign_sc(v);
                                }
                            }
                        }
                    }
                    TapeOpKind::Or => {
                        let arow = op.a as usize * nb;
                        let brow = op.b as usize * nb;
                        for (bi, acc) in out.iter_mut().enumerate() {
                            acc.add_of(&values[arow + bi], &values[brow + bi]);
                        }
                    }
                }
            }
            let old = &self.bvalues[row..row + nb];
            let any_changed = self.bacc[..nb]
                .iter()
                .zip(old)
                .any(|(new, old)| new.bits_ne(old));
            if any_changed {
                self.bvalues[row..row + nb].copy_from_slice(&self.bacc[..nb]);
                for &p in tape.parents_of(cursor as TapeId) {
                    if !self.queued[p as usize] {
                        self.queued[p as usize] = true;
                        pending += 1;
                    }
                }
            }
            cursor += 1;
        }
    }

    /// Batched upward + downward pass: per-lane root values and partials.
    /// Lane `l` matches the scalar differentials pass bit-for-bit (same
    /// per-lane zero-partial skip). Read results through
    /// [`value_lane`](TapeEvaluator::value_lane) /
    /// [`wrt_lit_lane`](TapeEvaluator::wrt_lit_lane).
    pub fn differentials_batch(&mut self, tape: &AcTape, weights: &AcWeightsBatch) {
        let k = weights.lanes();
        self.partial_lanes = k;
        self.value_lanes = k;
        if k == 0 {
            return;
        }
        tape.check_weights(weights.num_slots());
        self.upward_full_products_batch(tape, weights, k);
        self.downward_batch(tape, k);
    }

    /// The lane-strided full-product upward half shared by the batch
    /// differential passes; flags the buffer for batch differential delta
    /// reuse.
    fn upward_full_products_batch(&mut self, tape: &AcTape, weights: &AcWeightsBatch, k: usize) {
        let n = tape.ops.len();
        let nb = weights.blocks_per_row();
        self.ensure_bvalues(n * nb);
        self.value_lanes = k;
        self.values_mode = ValuesMode::BatchDiffUpward;
        self.values_stamp = tape.stamp;
        let values = &mut self.bvalues[..n * nb];
        for (i, op) in tape.ops.iter().enumerate() {
            let row = i * nb;
            let (head, tail) = values.split_at_mut(row);
            let out = &mut tail[..nb];
            match op.kind {
                TapeOpKind::Const => out.fill(LaneBlock::splat(tape.consts[op.a as usize])),
                TapeOpKind::Lit => out.copy_from_slice(weights.row_blocks_by_slot(op.a)),
                TapeOpKind::And2 => {
                    let arow = &head[op.a as usize * nb..op.a as usize * nb + nb];
                    let brow = &head[op.b as usize * nb..op.b as usize * nb + nb];
                    for (acc, (x, y)) in out.iter_mut().zip(arow.iter().zip(brow)) {
                        *acc = LaneBlock::one_times(x);
                        acc.mul_assign(y);
                    }
                }
                TapeOpKind::And => {
                    out.fill(LaneBlock::ONE);
                    for &c in &tape.edges[op.a as usize..op.b as usize] {
                        let child = &head[c as usize * nb..c as usize * nb + nb];
                        for (a, v) in out.iter_mut().zip(child) {
                            a.mul_assign(v);
                        }
                    }
                }
                TapeOpKind::Or => {
                    let arow = op.a as usize * nb;
                    let brow = op.b as usize * nb;
                    for (bi, a) in out.iter_mut().enumerate() {
                        a.add_of(&head[arow + bi], &head[brow + bi]);
                    }
                }
            }
        }
    }

    /// The full-tape batch downward sweep over the current lane-strided
    /// full-product `values` buffer.
    fn downward_batch(&mut self, tape: &AcTape, k: usize) {
        let n = tape.ops.len();
        let nb = blocks_for(k);
        let values = &self.bvalues[..n * nb];
        if self.bpartials.len() < n * nb {
            self.bpartials.resize(n * nb, LaneBlock::ZERO);
        }
        self.partial_lanes = k;
        let partials = &mut self.bpartials[..n * nb];
        partials.fill(LaneBlock::ZERO);
        let root_row = tape.root as usize * nb;
        // The root partial seed is MASKED: live lanes start at one, dead
        // remainder lanes at zero — so dead-lane partials stay zero and
        // the all-zero row skips fire exactly as with a full block.
        masked_ones_row(&mut partials[root_row..root_row + nb], k);
        self.bsuffix.clear();
        self.bsuffix.resize(nb, LaneBlock::ONE);
        self.bacc.clear();
        self.bacc.resize(nb, LaneBlock::ONE);
        // The stash is pre-sized once from the tape's maximum AND arity
        // (grow-only); the backward scan overwrites every entry the
        // forward scan reads, so no per-slot fill is needed.
        let stash = tape.max_and_arity as usize * nb;
        if self.bprefix.len() < stash {
            self.bprefix.resize(stash, LaneBlock::ZERO);
        }
        for (i, op) in tape.ops.iter().enumerate().rev() {
            let row = i * nb;
            match op.kind {
                TapeOpKind::And2 | TapeOpKind::And => {
                    let p_row = &partials[row..row + nb];
                    if p_row.iter().all(LaneBlock::all_zero) {
                        continue;
                    }
                    self.bpcopy.clear();
                    self.bpcopy.extend_from_slice(p_row);
                    let pair = [op.a, op.b];
                    let cs: &[TapeId] = if op.kind == TapeOpKind::And2 {
                        &pair
                    } else {
                        &tape.edges[op.a as usize..op.b as usize]
                    };
                    // `bprefix` stashes the SUFFIX Π_{j>c} v_j from the
                    // right; the forward sweep carries pq = p·Π_{j<c} v_j
                    // in `bacc`, exactly as the scalar kernel.
                    self.bsuffix.fill(LaneBlock::ONE);
                    for (ci, &c) in cs.iter().enumerate().rev() {
                        self.bprefix[ci * nb..ci * nb + nb].copy_from_slice(&self.bsuffix);
                        let child = &values[c as usize * nb..c as usize * nb + nb];
                        for (s, v) in self.bsuffix.iter_mut().zip(child) {
                            s.mul_assign(v);
                        }
                    }
                    self.bacc[..nb].copy_from_slice(&self.bpcopy);
                    for (ci, &c) in cs.iter().enumerate() {
                        let crow = c as usize * nb;
                        for bi in 0..nb {
                            // Per-lane zero-partial select keeps each
                            // lane's accumulation sequence identical to
                            // scalar.
                            let pq = self.bacc[bi];
                            partials[crow + bi].add_mul_where(
                                &self.bpcopy[bi],
                                &pq,
                                &self.bprefix[ci * nb + bi],
                            );
                        }
                        let child = &values[crow..crow + nb];
                        for (a, v) in self.bacc.iter_mut().zip(child) {
                            a.mul_assign(v);
                        }
                    }
                }
                TapeOpKind::Or => {
                    let arow = op.a as usize * nb;
                    let brow = op.b as usize * nb;
                    // Children precede parents, so both child rows sit in
                    // `head` and the borrow split is disjoint.
                    let (head, tail) = partials.split_at_mut(row);
                    let p_row = &tail[..nb];
                    for (bi, p) in p_row.iter().enumerate() {
                        head[arow + bi].add_where_nonzero(p);
                        head[brow + bi].add_where_nonzero(p);
                    }
                }
                _ => {}
            }
        }
    }

    /// Batched [`differentials_cone`](TapeEvaluator::differentials_cone):
    /// lane-strided full-product upward plus a cone-restricted batch
    /// downward. Lane `l`'s partials at every cone slot are bit-for-bit
    /// the scalar [`differentials_cone`](TapeEvaluator::differentials_cone)
    /// of that lane's weights (hence bit-for-bit the full scalar
    /// [`differentials`](TapeEvaluator::differentials) there). Read root
    /// values through [`value_lane`](TapeEvaluator::value_lane) and
    /// contractions through
    /// [`contract_tangent_broadcast`](TapeEvaluator::contract_tangent_broadcast);
    /// partials outside the cone are stale.
    ///
    /// This is the analytic-gradient throughput kernel: lanes are
    /// *evidence assignments* (basis states) sharing one parameter
    /// binding, so the per-slot sweep overhead — the reason a scalar
    /// downward pass per basis state cannot beat the delta-batched
    /// parameter-shift path — is paid once per `k` states.
    pub fn differentials_cone_batch(
        &mut self,
        tape: &AcTape,
        weights: &AcWeightsBatch,
        cone: &DiffCone,
    ) {
        let k = weights.lanes();
        self.partial_lanes = k;
        self.value_lanes = k;
        if k == 0 {
            return;
        }
        tape.check_weights(weights.num_slots());
        self.upward_full_products_batch(tape, weights, k);
        self.downward_cone_batch(tape, cone, k);
    }

    /// [`differentials_cone_batch`](TapeEvaluator::differentials_cone_batch)
    /// when only the weights of `changed_vars` differ (in any lane) from
    /// this evaluator's previous batch differential pass on the same tape:
    /// the upward half updates just the dirty rows. Falls back to the full
    /// pass when the cached buffer is unusable. Bit-for-bit equal, lane by
    /// lane, to the full pass.
    pub fn differentials_cone_batch_delta(
        &mut self,
        tape: &AcTape,
        weights: &AcWeightsBatch,
        changed_vars: &[u32],
        cone: &DiffCone,
    ) {
        let k = weights.lanes();
        if k == 0 {
            self.partial_lanes = 0;
            self.value_lanes = 0;
            return;
        }
        if self.values_mode != ValuesMode::BatchDiffUpward
            || self.values_stamp != tape.stamp
            || self.value_lanes != k
        {
            return self.differentials_cone_batch(tape, weights, cone);
        }
        tape.check_weights(weights.num_slots());
        self.partial_lanes = k;
        self.delta_update_batch(tape, weights, changed_vars, weights.blocks_per_row(), true);
        self.downward_cone_batch(tape, cone, k);
    }

    /// Hints the CPU to start pulling the block row starting at `buf[at]`
    /// — the batched downward sweeps are latency-bound on scattered row
    /// fetches (a few hundred cycles of stall against a couple hundred
    /// cycles of arithmetic per slot), so the hint is nearly free and
    /// hides most of the miss. No-op off x86_64.
    #[inline(always)]
    // Audited exception to the workspace `unsafe_code` deny: a pure
    // cache hint, no architectural reads or writes.
    #[allow(unsafe_code)]
    fn prefetch_row(buf: &[LaneBlock], at: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            // Touch only the first block (128 bytes = two cache lines);
            // the in-row access pattern is sequential, so the hardware
            // stream prefetcher covers any further blocks. Requesting
            // every line of every row of a wide product node floods the
            // load queue and evicts live data — measurably slower than
            // under-prefetching.
            if at < buf.len() {
                // SAFETY: `at` is in bounds; prefetch reads nothing
                // architecturally and has no side effects beyond the cache.
                unsafe {
                    let p = buf.as_ptr().add(at) as *const i8;
                    core::arch::x86_64::_mm_prefetch(p, core::arch::x86_64::_MM_HINT_T0);
                    core::arch::x86_64::_mm_prefetch(p.add(64), core::arch::x86_64::_MM_HINT_T0);
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (buf, at);
    }

    /// The cone-restricted batch downward sweep: the batch analogue of
    /// [`downward_cone`](TapeEvaluator::downward_cone). Per-lane
    /// accumulation sequences stay identical to the scalar cone sweep
    /// (zero-partial adds are bitwise no-ops, so the lane loops run
    /// branchless).
    fn downward_cone_batch(&mut self, tape: &AcTape, cone: &DiffCone, k: usize) {
        debug_assert_eq!(cone.stamp, tape.stamp, "cone built for a different tape");
        let n = tape.ops.len();
        let nb = blocks_for(k);
        let values = &self.bvalues[..n * nb];
        if self.bpartials.len() < n * nb {
            self.bpartials.resize(n * nb, LaneBlock::ZERO);
        }
        self.partial_lanes = k;
        let partials = &mut self.bpartials[..n * nb];
        for &s in &cone.slots {
            partials[s as usize * nb..s as usize * nb + nb].fill(LaneBlock::ZERO);
        }
        if cone.slots.is_empty() {
            return;
        }
        let root_row = tape.root as usize * nb;
        // Masked seed (live lanes one, dead remainder lanes zero): dead
        // partial lanes never turn nonzero through the multiplies below,
        // so the all-zero row skips fire as they would for a full block.
        masked_ones_row(&mut partials[root_row..root_row + nb], k);
        self.bsuffix.clear();
        self.bsuffix.resize(nb, LaneBlock::ONE);
        self.bacc.clear();
        self.bacc.resize(nb, LaneBlock::ONE);
        let stash = tape.max_and_arity as usize * nb;
        if self.bprefix.len() < stash {
            self.bprefix.resize(stash, LaneBlock::ZERO);
        }
        let slots = &cone.slots;
        for idx in (0..slots.len()).rev() {
            let i = slots[idx] as usize;
            let row = i * nb;
            let op = tape.ops[i];
            // The sweep is latency-bound on the scattered child rows
            // (a few thousand slots, each touching 2+ rows far apart),
            // so request the rows of a slot a few iterations ahead while
            // this one computes. Pure hint: no effect on results.
            if idx >= 8 {
                let f = slots[idx - 8] as usize;
                let fop = tape.ops[f];
                match fop.kind {
                    TapeOpKind::And2 | TapeOpKind::Or => {
                        Self::prefetch_row(values, fop.a as usize * nb);
                        Self::prefetch_row(values, fop.b as usize * nb);
                        Self::prefetch_row(partials, fop.a as usize * nb);
                        Self::prefetch_row(partials, fop.b as usize * nb);
                        Self::prefetch_row(partials, f * nb);
                    }
                    TapeOpKind::And => {
                        for &c in &tape.edges[fop.a as usize..fop.b as usize] {
                            Self::prefetch_row(values, c as usize * nb);
                            if cone.member[c as usize] {
                                Self::prefetch_row(partials, c as usize * nb);
                            }
                        }
                        Self::prefetch_row(partials, f * nb);
                    }
                    _ => {}
                }
            }
            match op.kind {
                TapeOpKind::And2 => {
                    // Unrolled two-child form of the generic suffix-stash/pq
                    // sweep below — the same multiplication sequence per
                    // lane (child a sees pq = p and suffix C_ONE·vb, child b
                    // sees pq = p·va and suffix C_ONE), so partials stay
                    // bit-identical without the per-slot scratch-buffer
                    // traffic. Children sit at smaller slots than their
                    // parent, so splitting at the parent row yields
                    // borrow-disjoint slices and the inner loops carry no
                    // bounds checks.
                    let arow = op.a as usize * nb;
                    let brow = op.b as usize * nb;
                    let a_in = cone.member[op.a as usize];
                    let b_in = cone.member[op.b as usize];
                    if !a_in && !b_in {
                        continue;
                    }
                    // No zero-partial select here: a zero `p` contributes
                    // an exact-zero product, and accumulators never hold
                    // -0.0 (they start at +0.0 and IEEE addition yields
                    // +0.0 on cancellation), so the add is a bitwise
                    // no-op — and the unconditional block op vectorizes.
                    let (head, tail) = partials.split_at_mut(row);
                    let p_row = &tail[..nb];
                    if a_in {
                        for bi in 0..nb {
                            let ov = LaneBlock::one_times(&values[brow + bi]);
                            head[arow + bi].add_mul(&p_row[bi], &ov);
                        }
                    }
                    if b_in {
                        for bi in 0..nb {
                            let pv = p_row[bi].mul(&values[arow + bi]);
                            head[brow + bi].add_mul(&pv, &LaneBlock::ONE);
                        }
                    }
                }
                TapeOpKind::And => {
                    // Same multiplication sequence as the reference sweep,
                    // restructured for memory behavior. A backward scan
                    // stashes the running suffix at every child position
                    // (the one scattered read per child row); a forward
                    // scan then carries pq = p·(prefix product) in `bacc`
                    // and pushes `pq · suffix[ci]` — a single multiply per
                    // member lane — re-reading the child rows while they
                    // are still cache-hot. One arity×nb stash instead of
                    // two — the sweep is bandwidth-bound on these.
                    // Contributions land in `head` (slots below `row`), so
                    // `p_row` cannot change mid-slot, and the adds are
                    // branchless like the And2 arm (zero-`p` adds are
                    // bitwise no-ops).
                    let (head, tail) = partials.split_at_mut(row);
                    let p_row = &tail[..nb];
                    if p_row.iter().all(LaneBlock::all_zero) {
                        continue;
                    }
                    let cs: &[TapeId] = &tape.edges[op.a as usize..op.b as usize];
                    // The suffix accumulates over every child (the product
                    // sequence must match the full sweep's); only the adds
                    // into non-cone children are skipped — they can never
                    // flow back into a cone slot.
                    self.bsuffix.fill(LaneBlock::ONE);
                    for (ci, &c) in cs.iter().enumerate().rev() {
                        self.bprefix[ci * nb..ci * nb + nb].copy_from_slice(&self.bsuffix);
                        let child = &values[c as usize * nb..c as usize * nb + nb];
                        for (s, v) in self.bsuffix.iter_mut().zip(child) {
                            s.mul_assign(v);
                        }
                    }
                    self.bacc[..nb].copy_from_slice(p_row);
                    for (ci, &c) in cs.iter().enumerate() {
                        let crow = c as usize * nb;
                        if cone.member[c as usize] {
                            let out = &mut head[crow..crow + nb];
                            let suf = &self.bprefix[ci * nb..ci * nb + nb];
                            for ((o, pq), s) in out.iter_mut().zip(self.bacc.iter()).zip(suf) {
                                o.add_mul(pq, s);
                            }
                        }
                        let child = &values[crow..crow + nb];
                        for (a, v) in self.bacc.iter_mut().zip(child) {
                            a.mul_assign(v);
                        }
                    }
                }
                TapeOpKind::Or => {
                    let arow = op.a as usize * nb;
                    let brow = op.b as usize * nb;
                    let a_in = cone.member[op.a as usize];
                    let b_in = cone.member[op.b as usize];
                    if !a_in && !b_in {
                        continue;
                    }
                    // Branchless for the same reason as the And2 arm: a
                    // zero `p` add is a bitwise no-op on these
                    // accumulators.
                    let (head, tail) = partials.split_at_mut(row);
                    let p_row = &tail[..nb];
                    if a_in {
                        for (o, p) in head[arow..arow + nb].iter_mut().zip(p_row) {
                            o.add_assign(p);
                        }
                    }
                    if b_in {
                        for (o, p) in head[brow..brow + nb].iter_mut().zip(p_row) {
                            o.add_assign(p);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The root value of lane `lane` from the most recent batched pass.
    #[inline]
    pub fn value_lane(&self, tape: &AcTape, lane: usize) -> Complex {
        let nb = blocks_for(self.value_lanes);
        self.bvalues[tape.root as usize * nb + lane / LANE_WIDTH].get(lane % LANE_WIDTH)
    }

    /// `∂f/∂w(lit)` in lane `lane` from the most recent
    /// [`differentials_batch`](TapeEvaluator::differentials_batch) pass.
    #[inline]
    pub fn wrt_lit_lane(&self, tape: &AcTape, lit: Lit, lane: usize) -> Option<Complex> {
        let nb = blocks_for(self.partial_lanes);
        tape.lit_slot(lit)
            .map(|s| self.bpartials[s as usize * nb + lane / LANE_WIDTH].get(lane % LANE_WIDTH))
    }

    /// Gradient contraction over the most recent **scalar** differentials
    /// pass: chain-rules the per-literal partials against one symbol's
    /// precomputed weight tangents,
    /// `∂root/∂θ = Σ_lit ∂root/∂w(lit) · d(w(lit))/dθ`.
    ///
    /// This is the one-pass analytic gradient kernel: ONE upward+downward
    /// [`differentials`](TapeEvaluator::differentials) pass serves every
    /// parameter simultaneously — each symbol costs one call here (a short
    /// dot product over its nonzero tangent literals), not a re-evaluation.
    /// Zero allocations; terms accumulate in the plan's literal order, so
    /// results are deterministic bit-for-bit.
    #[inline]
    pub fn contract_tangent(&self, plan: &TangentPlan) -> Complex {
        debug_assert_eq!(self.partial_lanes, 1, "scalar read after batch pass");
        let mut acc = C_ZERO;
        for &(slot, t) in &plan.entries {
            acc += self.partials[slot as usize] * t;
        }
        acc
    }

    /// The `k`-lane analogue of
    /// [`contract_tangent`](TapeEvaluator::contract_tangent) over the most
    /// recent [`differentials_batch`](TapeEvaluator::differentials_batch)
    /// pass: writes one contracted value per lane into `out`. Lane `l` is
    /// bit-for-bit the scalar contraction of that lane's tangents (same
    /// nonzero-tangent skip, same literal-order accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the pass's lane count, or the
    /// plan was built for a different lane count.
    pub fn contract_tangent_lanes(&mut self, plan: &TangentPlanBatch, out: &mut [Complex]) {
        let k = self.partial_lanes;
        assert_eq!(plan.lanes, k, "plan lane count mismatch");
        assert_eq!(out.len(), k, "output lane count mismatch");
        let nb = blocks_for(k);
        self.bacc.clear();
        self.bacc.resize(nb, LaneBlock::ZERO);
        for (e, &slot) in plan.slots.iter().enumerate() {
            let prow = &self.bpartials[slot as usize * nb..slot as usize * nb + nb];
            let trow = &plan.rows[e * nb..e * nb + nb];
            for ((o, p), t) in self.bacc.iter_mut().zip(prow).zip(trow) {
                // Per-lane zero-tangent select: a lane's add sequence is
                // exactly its scalar plan's (which filters zeros out).
                o.add_mul_where(t, p, t);
            }
        }
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.bacc[l / LANE_WIDTH].get(l % LANE_WIDTH);
        }
    }

    /// [`contract_tangent`](TapeEvaluator::contract_tangent) against the
    /// most recent **batched** pass, broadcasting one scalar plan across
    /// every lane — the basis-state-lane gradient loop, where lanes differ
    /// in evidence but share the parameter binding (and therefore the
    /// tangents). Lane `l` of `out` is bit-for-bit the scalar contraction
    /// over that lane's partials (same plan-order accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the pass's lane count.
    pub fn contract_tangent_broadcast(&mut self, plan: &TangentPlan, out: &mut [Complex]) {
        let k = self.partial_lanes;
        assert_eq!(out.len(), k, "output lane count mismatch");
        let nb = blocks_for(k);
        self.bacc.clear();
        self.bacc.resize(nb, LaneBlock::ZERO);
        for &(slot, t) in &plan.entries {
            let prow = &self.bpartials[slot as usize * nb..slot as usize * nb + nb];
            let tb = LaneBlock::splat(t);
            for (o, p) in self.bacc.iter_mut().zip(prow) {
                o.add_mul(p, &tb);
            }
        }
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.bacc[l / LANE_WIDTH].get(l % LANE_WIDTH);
        }
    }

    /// Magnitude pass for model sampling: fills the persistent magnitude
    /// buffer with the *absolute* value of every slot under `weights` and
    /// returns the root magnitude. The buffer stays valid (for
    /// [`draw_model`](TapeEvaluator::draw_model)) until the next magnitude
    /// pass — weights that do not change between draws (the Gibbs
    /// zero-density redraw loop) pay this pass once.
    pub fn model_magnitudes(&mut self, tape: &AcTape, weights: &AcWeights) -> f64 {
        tape.check_weights(weights.num_slots());
        let n = tape.ops.len();
        if self.mags.len() < n {
            self.mags.resize(n, 0.0);
        }
        let mags = &mut self.mags[..n];
        for (i, op) in tape.ops.iter().enumerate() {
            mags[i] = match op.kind {
                TapeOpKind::Const => tape.consts[op.a as usize].norm(),
                TapeOpKind::Lit => weights.by_slot(op.a).norm(),
                TapeOpKind::And2 => 1.0 * mags[op.a as usize] * mags[op.b as usize],
                TapeOpKind::And => tape.edges[op.a as usize..op.b as usize]
                    .iter()
                    .map(|&c| mags[c as usize])
                    .product(),
                TapeOpKind::Or => mags[op.a as usize] + mags[op.b as usize],
            };
        }
        mags[tape.root as usize]
    }

    /// Descends from the root, choosing OR branches proportionally to the
    /// magnitudes of the last
    /// [`model_magnitudes`](TapeEvaluator::model_magnitudes) pass, and
    /// appends the literals along the sampled model to `lits` (cleared
    /// first). Visits OR nodes in the same order as the enum-walk
    /// [`sample_model`](crate::sample_model()), so it consumes the
    /// identical RNG stream and yields the identical model.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the magnitude buffer is stale for this tape.
    pub fn draw_model<R: rand::Rng + ?Sized>(
        &mut self,
        tape: &AcTape,
        rng: &mut R,
        lits: &mut Vec<Lit>,
    ) {
        debug_assert!(self.mags.len() >= tape.ops.len(), "stale magnitude buffer");
        lits.clear();
        self.stack.clear();
        self.stack.push(tape.root);
        while let Some(id) = self.stack.pop() {
            let op = tape.ops[id as usize];
            match op.kind {
                TapeOpKind::Lit => lits.push(op.b as i32),
                TapeOpKind::And2 => {
                    self.stack.push(op.a);
                    self.stack.push(op.b);
                }
                TapeOpKind::And => self
                    .stack
                    .extend_from_slice(&tape.edges[op.a as usize..op.b as usize]),
                TapeOpKind::Or => {
                    let (ma, mb) = (self.mags[op.a as usize], self.mags[op.b as usize]);
                    let pick_a = if ma + mb <= 0.0 {
                        rng.gen::<bool>()
                    } else {
                        rng.gen::<f64>() * (ma + mb) < ma
                    };
                    self.stack.push(if pick_a { op.a } else { op.b });
                }
                TapeOpKind::Const => {}
            }
        }
    }

    /// Samples one model of the circuit, with branch choices weighted by
    /// the absolute literal weights — magnitude pass plus descent in one
    /// call, bit-for-bit the enum-walk [`sample_model`](crate::sample_model()).
    /// Returns `None` if no model has nonzero weight magnitude.
    pub fn sample_model<R: rand::Rng + ?Sized>(
        &mut self,
        tape: &AcTape,
        weights: &AcWeights,
        rng: &mut R,
    ) -> Option<Vec<Lit>> {
        if self.model_magnitudes(tape, weights) <= 0.0 {
            return None;
        }
        let mut lits = Vec::new();
        self.draw_model(tape, rng, &mut lits);
        Some(lits)
    }
}

/// Fills `out` with the masked all-ones row for `k` live lanes: full
/// blocks all-one, the trailing ragged block one in live lanes and zero in
/// dead remainder lanes.
#[inline]
fn masked_ones_row(out: &mut [LaneBlock], k: usize) {
    out.fill(LaneBlock::ONE);
    let rem = k % LANE_WIDTH;
    if rem != 0 {
        let last = out.last_mut().expect("k > 0 implies at least one block");
        for w in rem..LANE_WIDTH {
            last.set(w, C_ZERO);
        }
    }
}

/// The batched upward value pass over lane blocks: one fixed-width
/// split-plane loop per block serves every lane count, ragged batches
/// riding the masked remainder block (mirrors the enum batch kernel).
#[inline(always)]
fn batch_upward(tape: &AcTape, weights: &AcWeightsBatch, values: &mut [LaneBlock], nb: usize) {
    for (i, op) in tape.ops.iter().enumerate() {
        let row = i * nb;
        // Children precede parents, so every child row sits in `head`.
        let (head, tail) = values.split_at_mut(row);
        let out = &mut tail[..nb];
        match op.kind {
            TapeOpKind::Const => out.fill(LaneBlock::splat(tape.consts[op.a as usize])),
            TapeOpKind::Lit => out.copy_from_slice(weights.row_blocks_by_slot(op.a)),
            TapeOpKind::And2 => {
                // The two-child product with the reference's short-circuit
                // sequence, as a select per lane.
                let arow = &head[op.a as usize * nb..op.a as usize * nb + nb];
                let brow = &head[op.b as usize * nb..op.b as usize * nb + nb];
                for (acc, (x, y)) in out.iter_mut().zip(arow.iter().zip(brow)) {
                    *acc = LaneBlock::one_times(x);
                    acc.mul_assign_sc(y);
                }
            }
            TapeOpKind::And => {
                out.fill(LaneBlock::ONE);
                for &c in &tape.edges[op.a as usize..op.b as usize] {
                    // Per-lane zero short-circuit + whole-AND break once
                    // every lane is dead, exactly as the enum batch kernel.
                    if out.iter().all(LaneBlock::all_zero) {
                        break;
                    }
                    let child = &head[c as usize * nb..c as usize * nb + nb];
                    for (acc, v) in out.iter_mut().zip(child) {
                        acc.mul_assign_sc(v);
                    }
                }
            }
            TapeOpKind::Or => {
                let a = &head[op.a as usize * nb..op.a as usize * nb + nb];
                let b = &head[op.b as usize * nb..op.b as usize * nb + nb];
                for (acc, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
                    acc.add_of(x, y);
                }
            }
        }
    }
}

/// An owned snapshot of a scalar differentials pass (value + per-slot
/// partials), borrowing only the tape. For callers that hold results across
/// further evaluator use (sensitivity analysis); the Gibbs loop reads the
/// evaluator's buffers directly instead.
#[derive(Debug)]
pub struct TapeDifferentials<'t> {
    value: Complex,
    partials: Vec<Complex>,
    tape: &'t AcTape,
}

impl<'t> TapeDifferentials<'t> {
    /// Value at the root (the amplitude of the current evidence).
    pub fn value(&self) -> Complex {
        self.value
    }

    /// `∂f/∂w(lit)` — see [`TapeEvaluator::wrt_lit`].
    pub fn wrt_lit(&self, lit: Lit) -> Option<Complex> {
        self.tape.lit_slot(lit).map(|s| self.partials[s as usize])
    }

    /// The partial derivative of the root with respect to tape slot `slot`.
    pub fn wrt_slot(&self, slot: TapeId) -> Complex {
        self.partials[slot as usize]
    }
}

/// The ancestor closure of a set of target tape slots: every slot from
/// which some target is reachable, targets included. Partial derivatives
/// flow strictly downward (a slot's partial is fed only by its parents),
/// so a downward sweep restricted to this cone
/// ([`TapeEvaluator::differentials_cone`]) produces partials at the
/// targets bit-for-bit equal to the full sweep's — every parent of a cone
/// member is itself a cone member, so no contribution is lost — while the
/// rest of the tape is never cleared or visited.
///
/// The cone is structural: it depends only on the tape and the targets,
/// not on weights or evidence. Gradient loops build it once per bind
/// (targets = the union of every symbol's nonzero-tangent literal slots)
/// and reuse it for every evidence assignment.
#[derive(Debug, Clone)]
pub struct DiffCone {
    /// Cone member slots, ascending tape order.
    slots: Vec<TapeId>,
    /// Per-slot membership mask (`tape.num_ops()` long).
    member: Vec<bool>,
    /// Identity of the tape the cone was built for.
    stamp: u64,
}

impl DiffCone {
    /// Builds the ancestor closure of `targets` over `tape` in one
    /// ascending sweep: a slot joins the cone when it is a target or any
    /// of its children already has (children precede parents in tape
    /// order). `O(ops + edges)`, once per bind.
    pub fn new(tape: &AcTape, targets: impl IntoIterator<Item = TapeId>) -> Self {
        let n = tape.ops.len();
        let mut member = vec![false; n];
        let mut any = false;
        for t in targets {
            member[t as usize] = true;
            any = true;
        }
        let mut slots = Vec::new();
        if any {
            for (i, op) in tape.ops.iter().enumerate() {
                if !member[i] {
                    let child_hit = match op.kind {
                        TapeOpKind::And2 | TapeOpKind::Or => {
                            member[op.a as usize] || member[op.b as usize]
                        }
                        TapeOpKind::And => tape.edges[op.a as usize..op.b as usize]
                            .iter()
                            .any(|&c| member[c as usize]),
                        _ => false,
                    };
                    if !child_hit {
                        continue;
                    }
                    member[i] = true;
                }
                slots.push(i as TapeId);
            }
            debug_assert!(
                member[tape.root as usize],
                "live tape slots are always root-reachable"
            );
        }
        Self {
            slots,
            member,
            stamp: tape.stamp,
        }
    }

    /// Number of cone slots (the restricted sweep's work per pass).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the target set was empty — every contraction over it is
    /// identically zero and the restricted sweep is a no-op.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A precomputed gradient-contraction plan for one symbol: the tape slot of
/// every literal whose weight tangent `d(w(lit))/dθ` is nonzero, paired with
/// that tangent. Tangents arrive in the same interleaved [`AcWeights`] slot
/// layout as the weights themselves; the plan resolves literals to tape
/// slots once — through the tape's existing literal→slot table — so each
/// per-assignment [`TapeEvaluator::contract_tangent`] call is a dense dot
/// product with no lookups.
#[derive(Debug, Clone, Default)]
pub struct TangentPlan {
    entries: Vec<(TapeId, Complex)>,
}

impl TangentPlan {
    /// Builds a plan from a tangent vector laid out like [`AcWeights`].
    /// Entries follow the tape's sorted literal order, which fixes the
    /// floating-point accumulation order of every later contraction.
    pub fn new(tape: &AcTape, tangents: &AcWeights) -> Self {
        let entries = tape
            .lit_slots()
            .iter()
            .filter_map(|&(lit, slot)| {
                let t = tangents.get(lit);
                (t != C_ZERO).then_some((slot, t))
            })
            .collect();
        Self { entries }
    }

    /// Number of literals with a nonzero tangent.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The tape slots carrying a nonzero tangent, in plan order — the
    /// seed set for a [`DiffCone`] covering this plan's contraction.
    pub fn slots(&self) -> impl Iterator<Item = TapeId> + '_ {
        self.entries.iter().map(|&(slot, _)| slot)
    }

    /// True when no literal carries this symbol (the contraction is zero).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The `k`-lane analogue of [`TangentPlan`]: keeps every literal whose
/// tangent is nonzero in *any* lane, with the full tangent block row per
/// kept slot (lane-blocked split-plane layout, dead remainder lanes zero).
/// Consumed by [`TapeEvaluator::contract_tangent_lanes`], whose per-lane
/// zero-select restores bit-identity with the scalar plan.
#[derive(Debug, Clone, Default)]
pub struct TangentPlanBatch {
    slots: Vec<TapeId>,
    rows: Vec<LaneBlock>,
    lanes: usize,
}

impl TangentPlanBatch {
    /// Builds a plan from a tangent batch laid out like [`AcWeightsBatch`].
    pub fn new(tape: &AcTape, tangents: &AcWeightsBatch) -> Self {
        let lanes = tangents.lanes();
        let mut slots = Vec::new();
        let mut rows = Vec::new();
        for &(lit, slot) in tape.lit_slots() {
            let row = tangents.row_blocks(lit);
            // Dead remainder lanes are zero in the container, so an
            // any-nonzero block test is exactly an any-live-lane test.
            if row.iter().any(|b| !b.all_zero()) {
                slots.push(slot);
                rows.extend_from_slice(row);
            }
        }
        Self { slots, rows, lanes }
    }

    /// Lane count the plan was built for.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of kept slots (literals nonzero in at least one lane).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// The tape slots carrying a nonzero tangent in some lane, in plan
    /// order — the batch analogue of [`TangentPlan::slots`], consumed by
    /// the verifier's tangent-plan liveness pass.
    pub fn slots(&self) -> impl Iterator<Item = TapeId> + '_ {
        self.slots.iter().copied()
    }

    /// True when no lane carries this symbol.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};
    use crate::evaluate::{evaluate, evaluate_with_differentials, sample_model};
    use crate::transform::smooth;
    use crate::NnfBuilder;
    use qkc_cnf::Cnf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bits_eq(a: Complex, b: Complex) -> bool {
        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
    }

    fn test_nnf() -> Nnf {
        // (v1 ∨ v2) ∧ (¬v1 ∨ v3), smoothed over all variables.
        let mut f = Cnf::new(3);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, 3]);
        let c = compile(&f, &CompileOptions::default());
        let groups: Vec<Vec<i32>> = (1..=3).map(|v| vec![v, -v]).collect();
        smooth(&c.nnf, &groups)
    }

    fn random_weights(num_vars: usize, rng: &mut StdRng) -> AcWeights {
        let mut w = AcWeights::uniform(num_vars);
        for v in 1..=num_vars as u32 {
            w.set(
                v,
                Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
                Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
            );
        }
        w
    }

    #[test]
    fn lowering_prunes_and_folds() {
        let mut b = NnfBuilder::new();
        let x = b.lit(1);
        let y = b.lit(2);
        let a = b.and([x, y]);
        let nnf = b.extract(a);
        let tape = AcTape::lower(&nnf);
        assert_eq!(tape.num_ops(), 3); // two lits + one binary and
        assert_eq!(tape.num_edges(), 0); // binary ANDs are inline And2 ops
        assert_eq!(tape.ops()[2].kind, TapeOpKind::And2);
        assert!(tape.lit_slot(1).is_some());
        assert!(tape.lit_slot(3).is_none());
        // Wider ANDs use the CSR edge buffer.
        let z = b.lit(3);
        let wide = b.and([x, y, z]);
        let tape = AcTape::lower(&b.extract(wide));
        assert_eq!(tape.num_edges(), 3);
    }

    #[test]
    fn trivial_constant_roots_fold() {
        let b = NnfBuilder::new();
        let nnf_true = b.extract(b.true_id());
        let tape = AcTape::lower(&nnf_true);
        assert_eq!(tape.num_ops(), 1);
        let mut eval = TapeEvaluator::new();
        assert!(bits_eq(tape.consts[0], C_ONE));
        assert!(bits_eq(eval.evaluate(&tape, &AcWeights::uniform(1)), C_ONE));
        let nnf_false = b.extract(b.false_id());
        let tape = AcTape::lower(&nnf_false);
        let mut eval = TapeEvaluator::new();
        assert!(bits_eq(
            eval.evaluate(&tape, &AcWeights::uniform(1)),
            C_ZERO
        ));
    }

    #[test]
    fn evaluate_matches_enum_walk_bit_for_bit() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let w = random_weights(3, &mut rng);
            assert!(bits_eq(eval.evaluate(&tape, &w), evaluate(&nnf, &w)));
        }
    }

    #[test]
    fn evaluate_matches_with_zero_evidence_weights() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let mut w = AcWeights::uniform(3);
        w.set(1, C_ZERO, Complex::real(-1.0));
        w.set(2, C_ZERO, C_ONE);
        assert!(bits_eq(eval.evaluate(&tape, &w), evaluate(&nnf, &w)));
    }

    #[test]
    fn differentials_match_enum_walk_bit_for_bit() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..25 {
            let w = random_weights(3, &mut rng);
            let value = eval.differentials(&tape, &w);
            let reference = evaluate_with_differentials(&nnf, &w);
            assert!(bits_eq(value, reference.value));
            for v in 1..=3i32 {
                for lit in [v, -v] {
                    match (eval.wrt_lit(&tape, lit), reference.wrt_lit(lit)) {
                        (Some(g), Some(want)) => assert!(bits_eq(g, want), "lit {lit}"),
                        (None, None) => {}
                        other => panic!("lit {lit}: presence mismatch {other:?}"),
                    }
                }
            }
            let snapshot = eval.take_differentials(&tape, value);
            assert!(bits_eq(snapshot.value(), reference.value));
            assert_eq!(
                snapshot
                    .wrt_lit(2)
                    .map(|c| (c.re.to_bits(), c.im.to_bits())),
                reference
                    .wrt_lit(2)
                    .map(|c| (c.re.to_bits(), c.im.to_bits()))
            );
        }
    }

    #[test]
    fn batch_matches_enum_batch_bit_for_bit() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(29);
        // Ragged widths around the block boundary exercise the masked
        // remainder block alongside the full-block fast path.
        for k in [
            1usize,
            4,
            LANE_WIDTH - 1,
            LANE_WIDTH,
            LANE_WIDTH + 1,
            16,
            2 * LANE_WIDTH + 3,
        ] {
            let lane_weights: Vec<AcWeights> =
                (0..k).map(|_| random_weights(3, &mut rng)).collect();
            let mut batch = AcWeightsBatch::uniform(3, k);
            for (lane, w) in lane_weights.iter().enumerate() {
                for v in 1..=3u32 {
                    batch.set_lane(v, lane, w.get(v as i32), w.get(-(v as i32)));
                }
            }
            let want = crate::evaluate_batch(&nnf, &batch);
            let got = eval.evaluate_batch(&tape, &batch).to_vec();
            for (lane, (&g, &w)) in got.iter().zip(&want).enumerate() {
                assert!(bits_eq(g, w), "k={k} lane {lane}");
            }
            let reference = crate::evaluate_with_differentials_batch(&nnf, &batch);
            eval.differentials_batch(&tape, &batch);
            for lane in 0..k {
                assert!(bits_eq(eval.value_lane(&tape, lane), reference.value(lane)));
                for v in 1..=3i32 {
                    for lit in [v, -v] {
                        assert_eq!(
                            eval.wrt_lit_lane(&tape, lit, lane)
                                .map(|c| (c.re.to_bits(), c.im.to_bits())),
                            reference
                                .wrt_lit(lit, lane)
                                .map(|c| (c.re.to_bits(), c.im.to_bits())),
                            "k={k} lane {lane} lit {lit}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sample_model_consumes_the_same_rng_stream() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let w = AcWeights::uniform(3);
        for seed in 0..20 {
            let mut rng_enum = StdRng::seed_from_u64(seed);
            let mut rng_tape = StdRng::seed_from_u64(seed);
            let want = sample_model(&nnf, &w, &mut rng_enum);
            let got = eval.sample_model(&tape, &w, &mut rng_tape);
            assert_eq!(got, want, "seed {seed}");
            // Identical downstream state proves identical RNG consumption.
            assert_eq!(rng_enum.gen::<u64>(), rng_tape.gen::<u64>(), "seed {seed}");
        }
    }

    #[test]
    fn cached_magnitudes_redraw_identically() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let w = AcWeights::uniform(3);
        let root_mag = eval.model_magnitudes(&tape, &w);
        assert!(root_mag > 0.0);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut lits = Vec::new();
        for _ in 0..10 {
            eval.draw_model(&tape, &mut rng_a, &mut lits);
            let want = sample_model(&nnf, &w, &mut rng_b).expect("satisfiable");
            assert_eq!(lits, want);
        }
    }

    #[test]
    fn unsat_tape_has_no_model() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![1]);
        f.add_clause(vec![-1]);
        let c = compile(&f, &CompileOptions::default());
        let tape = AcTape::lower(&c.nnf);
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(eval
            .sample_model(&tape, &AcWeights::uniform(1), &mut rng)
            .is_none());
    }

    #[test]
    fn delta_passes_match_full_recompute_bit_for_bit() {
        // Random sequences of single/multi-variable weight updates: the
        // delta kernels (dirty-cone recompute) must stay bitwise equal to
        // a full pass on a fresh evaluator, in both arithmetic modes.
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut delta_eval = TapeEvaluator::new();
        let mut full_eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(41);
        let mut w = random_weights(3, &mut rng);
        assert!(bits_eq(
            delta_eval.evaluate(&tape, &w),
            full_eval.evaluate(&tape, &w)
        ));
        for step in 0..200 {
            // Mutate 1..=3 variables, sometimes to evidence-like 0/1
            // weights so zero short-circuits and zero partials fire.
            let count = 1 + rng.gen_range(0..3usize);
            let mut changed = Vec::new();
            for _ in 0..count {
                let v = 1 + rng.gen_range(0..3) as u32;
                let evidence = rng.gen::<f64>() < 0.4;
                let (pos, neg) = if evidence {
                    if rng.gen::<bool>() {
                        (C_ONE, C_ZERO)
                    } else {
                        (C_ZERO, C_ONE)
                    }
                } else {
                    (
                        Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
                        Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
                    )
                };
                w.set(v, pos, neg);
                changed.push(v);
            }
            if step % 2 == 0 {
                let got = delta_eval.evaluate_delta(&tape, &w, &changed);
                let want = full_eval.evaluate(&tape, &w);
                assert!(bits_eq(got, want), "step {step} (evaluate mode)");
            } else {
                let got = delta_eval.differentials_delta(&tape, &w, &changed);
                let want = full_eval.differentials(&tape, &w);
                assert!(bits_eq(got, want), "step {step} (diff mode)");
                for v in 1..=3i32 {
                    for lit in [v, -v] {
                        assert_eq!(
                            delta_eval
                                .wrt_lit(&tape, lit)
                                .map(|c| (c.re.to_bits(), c.im.to_bits())),
                            full_eval
                                .wrt_lit(&tape, lit)
                                .map(|c| (c.re.to_bits(), c.im.to_bits())),
                            "step {step} lit {lit}"
                        );
                    }
                }
            }
            // Note: alternating modes forces the fallback path too (the
            // mode check rejects the other mode's buffer).
        }
    }

    #[test]
    fn batch_delta_matches_full_batch_and_scalar_bit_for_bit() {
        // Random sequences of shared-evidence and per-lane weight updates:
        // the delta-aware batch kernel must stay bitwise equal to a full
        // batched pass on a fresh evaluator — and, lane by lane, to the
        // scalar evaluator.
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut rng = StdRng::seed_from_u64(59);
        for k in [
            1usize,
            3,
            4,
            LANE_WIDTH - 1,
            LANE_WIDTH + 1,
            16,
            2 * LANE_WIDTH + 3,
        ] {
            let mut delta_eval = TapeEvaluator::new();
            let mut full_eval = TapeEvaluator::new();
            let mut scalar_eval = TapeEvaluator::new();
            let mut batch = AcWeightsBatch::uniform(3, k);
            let mut lanes: Vec<AcWeights> = Vec::with_capacity(k);
            for lane in 0..k {
                let w = random_weights(3, &mut rng);
                for v in 1..=3u32 {
                    batch.set_lane(v, lane, w.get(v as i32), w.get(-(v as i32)));
                }
                lanes.push(w);
            }
            // First call on a fresh evaluator exercises the fallback.
            let first = delta_eval
                .evaluate_batch_delta(&tape, &batch, &[1, 2, 3])
                .to_vec();
            let want = full_eval.evaluate_batch(&tape, &batch).to_vec();
            assert_eq!(first.len(), want.len());
            for (lane, (&g, &w)) in first.iter().zip(&want).enumerate() {
                assert!(bits_eq(g, w), "k={k} warmup lane {lane}");
            }
            for step in 0..120 {
                let v = 1 + rng.gen_range(0..3) as u32;
                if rng.gen::<f64>() < 0.5 {
                    // Shared evidence write (the Gray-sweep case).
                    let (pos, neg) = if rng.gen::<bool>() {
                        (C_ONE, C_ZERO)
                    } else {
                        (C_ZERO, C_ONE)
                    };
                    batch.set_all(v, pos, neg);
                    for w in &mut lanes {
                        w.set(v, pos, neg);
                    }
                } else {
                    // Per-lane parameter write.
                    for (lane, w) in lanes.iter_mut().enumerate() {
                        let pos = Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
                        let neg = Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
                        batch.set_lane(v, lane, pos, neg);
                        w.set(v, pos, neg);
                    }
                }
                let got = delta_eval
                    .evaluate_batch_delta(&tape, &batch, &[v])
                    .to_vec();
                let want = full_eval.evaluate_batch(&tape, &batch).to_vec();
                for (lane, (&g, &w)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        bits_eq(g, w),
                        "k={k} step {step} lane {lane} (vs full batch)"
                    );
                    let scalar = scalar_eval.evaluate(&tape, &lanes[lane]);
                    assert!(
                        bits_eq(g, scalar),
                        "k={k} step {step} lane {lane} (vs scalar)"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_delta_falls_back_on_lane_count_change() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let batch4 = AcWeightsBatch::uniform(3, 4);
        eval.evaluate_batch(&tape, &batch4);
        // Different lane count: the cached buffer is strided for k=4, so a
        // k=2 delta must run a full pass instead of reading stale rows.
        let mut rng = StdRng::seed_from_u64(61);
        let mut batch2 = AcWeightsBatch::uniform(3, 2);
        for lane in 0..2 {
            let w = random_weights(3, &mut rng);
            for v in 1..=3u32 {
                batch2.set_lane(v, lane, w.get(v as i32), w.get(-(v as i32)));
            }
        }
        let got = eval.evaluate_batch_delta(&tape, &batch2, &[]).to_vec();
        let want = TapeEvaluator::new().evaluate_batch(&tape, &batch2).to_vec();
        for (lane, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!(bits_eq(g, w), "lane {lane}");
        }
        // Scalar passes also invalidate the batch buffer.
        let w = random_weights(3, &mut rng);
        eval.evaluate(&tape, &w);
        let got = eval.evaluate_batch_delta(&tape, &batch2, &[]).to_vec();
        for (lane, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!(bits_eq(g, w), "post-scalar lane {lane}");
        }
    }

    #[test]
    fn delta_with_no_changes_is_a_no_op() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(43);
        let w = random_weights(3, &mut rng);
        let full = eval.evaluate(&tape, &w);
        assert!(bits_eq(eval.evaluate_delta(&tape, &w, &[]), full));
    }

    #[test]
    fn delta_falls_back_after_batch_pass_invalidates() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(47);
        let mut w = random_weights(3, &mut rng);
        eval.evaluate(&tape, &w);
        // A batch pass overwrites `values` with lane-strided data...
        let batch = AcWeightsBatch::uniform(3, 4);
        eval.evaluate_batch(&tape, &batch);
        // ...so a subsequent delta must fall back to a full pass rather
        // than extend garbage.
        w.set(1, C_ZERO, C_ONE);
        let got = eval.evaluate_delta(&tape, &w, &[1]);
        assert!(bits_eq(got, evaluate(&nnf, &w)));
    }

    #[test]
    fn delta_falls_back_across_tapes() {
        let nnf = test_nnf();
        let tape_a = AcTape::lower(&nnf);
        let tape_b = AcTape::lower(&nnf); // same content, different stamp
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(53);
        let w = random_weights(3, &mut rng);
        eval.evaluate(&tape_a, &w);
        let got = eval.evaluate_delta(&tape_b, &w, &[]);
        assert!(bits_eq(got, evaluate(&nnf, &w)));
    }

    #[test]
    fn undersized_weight_vector_is_rejected() {
        let nnf = test_nnf(); // mentions variables up to 3
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eval.evaluate(&tape, &AcWeights::uniform(1))
        }));
        assert!(result.is_err(), "undersized weights must panic, not UB");
    }

    #[test]
    fn size_bytes_is_exact_over_buffers() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let expected = std::mem::size_of::<AcTape>()
            + tape.ops.len() * std::mem::size_of::<TapeOp>()
            + tape.edges.len() * std::mem::size_of::<TapeId>()
            + tape.consts.len() * std::mem::size_of::<Complex>()
            + tape.lit_slots.len() * std::mem::size_of::<(Lit, TapeId)>()
            + tape.parent_offsets.len() * std::mem::size_of::<u32>()
            + tape.parents.len() * std::mem::size_of::<TapeId>();
        assert_eq!(tape.size_bytes(), expected);
        assert!(tape.size_bytes() > 0);
    }

    #[test]
    fn empty_batch_is_empty() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let batch = AcWeightsBatch::uniform(3, 0);
        assert!(eval.evaluate_batch(&tape, &batch).is_empty());
    }

    #[test]
    fn evaluator_buffers_are_reused_across_tapes() {
        // A big tape warms the buffers; a smaller one must still compute
        // correctly over the (larger, stale) storage.
        let big = test_nnf();
        let big_tape = AcTape::lower(&big);
        let mut f = Cnf::new(1);
        f.add_clause(vec![1]);
        let small = compile(&f, &CompileOptions::default());
        let small_tape = AcTape::lower(&small.nnf);
        let mut eval = TapeEvaluator::new();
        let w3 = AcWeights::uniform(3);
        let w1 = AcWeights::uniform(1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let wr = random_weights(3, &mut rng);
            assert!(bits_eq(eval.evaluate(&big_tape, &wr), evaluate(&big, &wr)));
            assert!(bits_eq(
                eval.evaluate(&small_tape, &w1),
                evaluate(&small.nnf, &w1)
            ));
            let v = eval.differentials(&big_tape, &w3);
            assert!(bits_eq(v, evaluate_with_differentials(&big, &w3).value));
        }
    }

    /// Random CNF for wire-format round-trip coverage (same generator
    /// family as the delta tests: enough clauses for non-trivial sharing).
    fn random_cnf(vars: usize, clauses: usize, seed: u64) -> Cnf {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = Cnf::new(vars);
        for _ in 0..clauses {
            let len = rng.gen_range(1..4usize);
            let mut clause = Vec::with_capacity(len);
            for _ in 0..len {
                let v = rng.gen_range(1..vars as i32 + 1);
                clause.push(if rng.gen::<bool>() { v } else { -v });
            }
            f.add_clause(clause);
        }
        f
    }

    #[test]
    fn wire_round_trip_is_bit_identical_under_every_kernel() {
        for seed in 0..20u64 {
            let f = random_cnf(6, 9, seed);
            let compiled = compile(&f, &CompileOptions::default());
            let groups: Vec<Vec<i32>> = (1..=6).map(|v| vec![v, -v]).collect();
            let nnf = smooth(&compiled.nnf, &groups);
            let tape = AcTape::lower(&nnf);
            let bytes = tape.to_bytes();
            let back = AcTape::from_bytes(&bytes).expect("round trip decodes");
            // Identical flat sections → identical byte stream again.
            assert_eq!(back.to_bytes(), bytes, "re-encode differs (seed {seed})");
            assert_ne!(back.stamp, tape.stamp, "decoded tape has its own identity");
            // Every kernel agrees bit-for-bit between original and decoded.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD5);
            let mut ea = TapeEvaluator::new();
            let mut eb = TapeEvaluator::new();
            for _ in 0..4 {
                let w = random_weights(6, &mut rng);
                assert!(bits_eq(ea.evaluate(&tape, &w), eb.evaluate(&back, &w)));
                assert!(bits_eq(
                    ea.differentials(&tape, &w),
                    eb.differentials(&back, &w)
                ));
                for v in 1..=6i32 {
                    for lit in [v, -v] {
                        assert_eq!(
                            ea.wrt_lit(&tape, lit)
                                .map(|c| (c.re.to_bits(), c.im.to_bits())),
                            eb.wrt_lit(&back, lit)
                                .map(|c| (c.re.to_bits(), c.im.to_bits())),
                        );
                    }
                }
                // Model sampling consumes the identical RNG stream.
                let mut ra = StdRng::seed_from_u64(7 + seed);
                let mut rb = StdRng::seed_from_u64(7 + seed);
                assert_eq!(
                    ea.sample_model(&tape, &w, &mut ra),
                    eb.sample_model(&back, &w, &mut rb)
                );
            }
        }
    }

    #[test]
    fn wire_rejects_corruption_truncation_and_version_skew() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let bytes = tape.to_bytes();

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            AcTape::from_bytes(&bad).err(),
            Some(TapeDecodeError::BadMagic)
        );

        // Future version.
        let mut bad = bytes.clone();
        bad[4] = 0xFE;
        assert_eq!(
            AcTape::from_bytes(&bad).err(),
            Some(TapeDecodeError::UnsupportedVersion(u16::from_le_bytes([
                0xFE, bad[5]
            ])))
        );

        // Every possible truncation point decodes to an error, never a
        // panic or a silently short tape.
        for len in 0..bytes.len() {
            assert!(
                AcTape::from_bytes(&bytes[..len]).is_err(),
                "truncation at {len} accepted"
            );
        }

        // Trailing garbage is rejected too.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 3]);
        assert!(AcTape::from_bytes(&long).is_err());

        // Any single-byte flip anywhere in the payload is caught (by the
        // checksum, or — if the flip lands in the checksum itself — by the
        // mismatch against the intact body).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(AcTape::from_bytes(&bad).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn wire_validates_structure_not_just_checksum() {
        // A payload with a valid checksum but broken invariants (child
        // after parent) must be rejected: rebuild a tampered body and
        // re-stamp its checksum.
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut bytes = tape.to_bytes();
        let body_len = bytes.len() - 8;
        // Find an And2/Or op and point its first child at itself: op
        // section starts at the fixed header.
        let ops_start = 4 + 2 + 2 + 4 + 4 + 16;
        let n_ops = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let mut patched = false;
        for i in 0..n_ops {
            let off = ops_start + i * 9;
            if bytes[off] == TapeOpKind::And2 as u8 || bytes[off] == TapeOpKind::Or as u8 {
                bytes[off + 1..off + 5].copy_from_slice(&(i as u32).to_le_bytes());
                patched = true;
                break;
            }
        }
        assert!(patched, "test nnf has an inner node");
        let sum = super::fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            AcTape::from_bytes(&bytes).err(),
            Some(TapeDecodeError::Malformed("child after parent"))
        );
    }

    /// Sparse random tangent vector: most slots zero, a few nonzero.
    fn random_tangents(num_vars: usize, rng: &mut StdRng) -> AcWeights {
        let mut t = AcWeights::zeros(num_vars);
        for v in 1..=num_vars as u32 {
            if rng.gen::<f64>() < 0.6 {
                t.set(
                    v,
                    Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
                    C_ZERO,
                );
            }
        }
        t
    }

    #[test]
    fn contract_tangent_matches_directional_derivative() {
        // ∂root/∂θ contracted from one differentials pass must match the
        // finite difference of `evaluate` along the tangent direction:
        // the AC is multilinear in its weights, so the FD is tight.
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..20 {
            let w = random_weights(3, &mut rng);
            let t = random_tangents(3, &mut rng);
            let plan = TangentPlan::new(&tape, &t);
            eval.differentials(&tape, &w);
            let analytic = eval.contract_tangent(&plan);
            // Manual chain rule straight off the partials buffer.
            let mut manual = C_ZERO;
            for v in 1..=3u32 {
                for lit in [v as Lit, -(v as Lit)] {
                    if let Some(p) = eval.wrt_lit(&tape, lit) {
                        manual += p * t.get(lit);
                    }
                }
            }
            assert!(analytic.approx_eq(manual, 1e-12));
            // Central finite difference along the tangent direction.
            let h = 1e-6;
            let shift = |s: f64| {
                let mut ws = AcWeights::uniform(3);
                for v in 1..=3u32 {
                    ws.set(
                        v,
                        w.get(v as Lit) + t.get(v as Lit).scale(s),
                        w.get(-(v as Lit)) + t.get(-(v as Lit)).scale(s),
                    );
                }
                let mut e = TapeEvaluator::new();
                e.evaluate(&tape, &ws)
            };
            let fd = (shift(h) - shift(-h)).scale(1.0 / (2.0 * h));
            assert!(
                analytic.approx_eq(fd, 1e-7),
                "analytic {analytic:?} vs fd {fd:?}"
            );
        }
    }

    #[test]
    fn contract_tangent_lanes_bit_identical_to_scalar() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let mut rng = StdRng::seed_from_u64(23);
        for lanes in [4usize, LANE_WIDTH, LANE_WIDTH + 1, 2 * LANE_WIDTH + 3] {
            let mut batch_w = AcWeightsBatch::uniform(3, lanes);
            let mut batch_t = AcWeightsBatch::zeros(3, lanes);
            let mut scalar_w = Vec::new();
            let mut scalar_t = Vec::new();
            for l in 0..lanes {
                let w = random_weights(3, &mut rng);
                let t = random_tangents(3, &mut rng);
                for v in 1..=3u32 {
                    batch_w.set_lane(v, l, w.get(v as Lit), w.get(-(v as Lit)));
                    batch_t.set_lane(v, l, t.get(v as Lit), t.get(-(v as Lit)));
                }
                scalar_w.push(w);
                scalar_t.push(t);
            }
            let plan = TangentPlanBatch::new(&tape, &batch_t);
            let mut eval = TapeEvaluator::new();
            eval.differentials_batch(&tape, &batch_w);
            let mut out = vec![C_ZERO; lanes];
            eval.contract_tangent_lanes(&plan, &mut out);
            for l in 0..lanes {
                let mut se = TapeEvaluator::new();
                se.differentials(&tape, &scalar_w[l]);
                let sp = TangentPlan::new(&tape, &scalar_t[l]);
                assert!(
                    bits_eq(out[l], se.contract_tangent(&sp)),
                    "lane {l} of {lanes} diverges from scalar"
                );
            }
        }
    }

    #[test]
    fn cone_restricted_differentials_are_bit_identical_to_full() {
        // Random CNFs, random weight/tangent draws, single-variable delta
        // steps: the cone-restricted sweeps must contract bit-for-bit like
        // the full sweeps — through both the fresh-evaluator (full upward)
        // path and the delta upward path.
        for seed in 0..10u64 {
            let f = random_cnf(6, 9, seed);
            let compiled = compile(&f, &CompileOptions::default());
            let groups: Vec<Vec<i32>> = (1..=6).map(|v| vec![v, -v]).collect();
            let nnf = smooth(&compiled.nnf, &groups);
            let tape = AcTape::lower(&nnf);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0);
            let t = random_tangents(6, &mut rng);
            let plan = TangentPlan::new(&tape, &t);
            let cone = DiffCone::new(&tape, plan.slots());
            assert!(cone.len() <= tape.num_ops());
            assert_eq!(cone.is_empty(), plan.is_empty());
            let mut full = TapeEvaluator::new();
            let mut coned = TapeEvaluator::new();
            let mut w = random_weights(6, &mut rng);
            let a = full.differentials(&tape, &w);
            let b = coned.differentials_cone(&tape, &w, &cone);
            assert!(bits_eq(a, b), "seed {seed} root (full upward)");
            assert!(
                bits_eq(full.contract_tangent(&plan), coned.contract_tangent(&plan)),
                "seed {seed} contraction (full upward)"
            );
            for step in 0..50 {
                // Evidence-like 0/1 weights fire the zero-partial skips.
                let v = 1 + rng.gen_range(0..6) as u32;
                let (pos, neg) = if rng.gen::<f64>() < 0.5 {
                    if rng.gen::<bool>() {
                        (C_ONE, C_ZERO)
                    } else {
                        (C_ZERO, C_ONE)
                    }
                } else {
                    (
                        Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
                        Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5),
                    )
                };
                w.set(v, pos, neg);
                let a = full.differentials_delta(&tape, &w, &[v]);
                let b = coned.differentials_cone_delta(&tape, &w, &[v], &cone);
                assert!(bits_eq(a, b), "seed {seed} step {step} root");
                assert!(
                    bits_eq(full.contract_tangent(&plan), coned.contract_tangent(&plan)),
                    "seed {seed} step {step} contraction"
                );
            }
        }
    }

    #[test]
    fn empty_cone_sweeps_nothing_but_keeps_the_root_value() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let cone = DiffCone::new(&tape, std::iter::empty());
        assert!(cone.is_empty());
        let mut rng = StdRng::seed_from_u64(7);
        let w = random_weights(3, &mut rng);
        let mut eval = TapeEvaluator::new();
        let mut reference = TapeEvaluator::new();
        assert!(bits_eq(
            eval.differentials_cone(&tape, &w, &cone),
            reference.differentials(&tape, &w)
        ));
    }

    #[test]
    fn empty_tangent_plan_contracts_to_zero() {
        let nnf = test_nnf();
        let tape = AcTape::lower(&nnf);
        let plan = TangentPlan::new(&tape, &AcWeights::zeros(3));
        assert!(plan.is_empty());
        let mut eval = TapeEvaluator::new();
        let mut rng = StdRng::seed_from_u64(3);
        eval.differentials(&tape, &random_weights(3, &mut rng));
        assert!(bits_eq(eval.contract_tangent(&plan), C_ZERO));
    }
}
