//! Chaos harness: seeded fault-injection matrices over real engine
//! workloads.
//!
//! The hard contract under test, from the engine's determinism guarantee:
//! **everything that succeeds under injected faults is byte-identical to
//! the fault-free run** — recovery paths (spill retries, quarantined
//! rehydration, per-point panic retries, degraded in-memory-only caching)
//! may cost time, but they may never perturb a value. Faults that defeat
//! recovery must surface as *typed* errors or typed per-point failures,
//! never as panics escaping the public API, and never as hung waiters.

use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::engine::{
    BackendKind, CacheOptions, Engine, EngineError, EngineOptions, FaultPlan, GradientSpec,
    QueryBudget, SweepSpec,
};
use std::path::PathBuf;
use std::time::Duration;

/// A unique scratch dir per call (std-only; no tempfile dependency).
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qkc-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A wide-shallow noisy sweep circuit the planner routes to the
/// knowledge-compilation backend — the one with a compile step, a cache
/// entry, and spill I/O to inject faults into.
fn chaos_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.rx(0, Param::symbol("t"))
        .cnot(0, 1)
        .zz(1, 2, Param::symbol("g"))
        .depolarize(1, 0.02);
    c
}

fn chaos_params(n: usize) -> Vec<ParamMap> {
    (0..n)
        .map(|i| ParamMap::from_pairs([("t", 0.15 + 0.1 * i as f64), ("g", 0.4 - 0.05 * i as f64)]))
        .collect()
}

fn observable(bits: usize) -> f64 {
    bits.count_ones() as f64 - 0.5
}

fn engine_with(
    threads: usize,
    batch: usize,
    extra: impl FnOnce(EngineOptions) -> EngineOptions,
) -> Engine {
    let options = EngineOptions::default()
        .with_backend(BackendKind::KnowledgeCompilation)
        .with_threads(threads)
        .with_batch(batch);
    Engine::with_options(extra(options))
}

/// The fault-free reference run every chaos result is compared against.
fn baseline(spec: &SweepSpec<'_>) -> Vec<qkc::engine::SweepPoint> {
    engine_with(1, 1, |o| o)
        .sweep(&chaos_circuit(), &chaos_params(8), spec)
        .expect("fault-free baseline")
}

#[test]
fn recovered_faults_reproduce_fault_free_bytes_across_the_matrix() {
    // Spill I/O failure storms (write, read, rename, torn bytes) plus
    // first-attempt-only worker panics: every fault here is recoverable
    // (retries, quarantine + recompile, point retry), so every sweep must
    // fully succeed and match the clean run bit for bit — at every thread
    // count and batch width in the CI matrix.
    let obs = observable;
    let spec = SweepSpec {
        shots: 32,
        observable: Some(&obs),
        keep_samples: true,
        seed: 0xC0FFEE,
    };
    let clean = baseline(&spec);
    for fault_seed in [1u64, 7, 42] {
        let plan = FaultPlan::seeded(fault_seed)
            .with_spill_write_rate(0.5)
            .with_spill_read_rate(0.5)
            .with_spill_rename_rate(0.3)
            .with_spill_torn_rate(0.3)
            .with_panic_at([2, 5]);
        for threads in [1usize, 2, 4] {
            for batch in [1usize, 16] {
                let dir = scratch_dir("matrix");
                let engine = engine_with(threads, batch, |o| {
                    o.with_cache(
                        CacheOptions::default()
                            // A 1-byte budget keeps nothing resident, so
                            // every re-touch exercises the faulty spill
                            // read path (or a recompile after quarantine).
                            .with_max_resident_bytes(1)
                            .with_spill_dir(&dir),
                    )
                    .with_fault_plan(plan.clone())
                });
                let got = engine
                    .sweep(&chaos_circuit(), &chaos_params(8), &spec)
                    .unwrap_or_else(|e| {
                        panic!("seed={fault_seed} threads={threads} batch={batch}: {e}")
                    });
                assert_eq!(
                    clean, got,
                    "seed={fault_seed} threads={threads} batch={batch}: \
                     recovery changed bytes"
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn defeated_retries_become_typed_per_point_failures() {
    // Panic on *every* attempt at two points: the single retry cannot
    // save them, so the report must carry exactly those two typed
    // failures — and every surviving point must still match the clean
    // run exactly.
    let obs = observable;
    let spec = SweepSpec {
        shots: 16,
        observable: Some(&obs),
        keep_samples: true,
        seed: 9,
    };
    let clean = baseline(&spec);
    let plan = FaultPlan::seeded(3)
        .with_panic_at([1, 6])
        .with_panic_every_attempt(true);
    for threads in [1usize, 2, 4] {
        for batch in [1usize, 16] {
            let engine = engine_with(threads, batch, |o| o.with_fault_plan(plan.clone()));
            let report = engine
                .sweep_report(&chaos_circuit(), &chaos_params(8), &spec)
                .expect("contained failures are not sweep-global errors");
            let failed: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
            assert_eq!(failed, vec![1, 6], "threads={threads} batch={batch}");
            for failure in &report.failures {
                assert!(
                    matches!(failure.error, EngineError::WorkerPanicked { .. }),
                    "typed failure, got {:?}",
                    failure.error
                );
            }
            assert_eq!(report.points.len(), 6);
            for point in &report.points {
                assert_eq!(
                    Some(point),
                    clean.iter().find(|p| p.index == point.index),
                    "threads={threads} batch={batch}: survivor perturbed"
                );
            }
            // The all-or-nothing entry point reports the lowest index.
            let strict = engine.sweep(&chaos_circuit(), &chaos_params(8), &spec);
            assert!(
                matches!(strict, Err(EngineError::WorkerPanicked { .. })),
                "got {strict:?}"
            );
        }
    }
}

#[test]
fn total_spill_write_failure_degrades_without_changing_answers() {
    // Every spill write fails forever: the cache must degrade to
    // in-memory-only mode (a mode, not an error) and answers must still
    // match the clean run exactly.
    let obs = observable;
    let spec = SweepSpec {
        shots: 0,
        observable: Some(&obs),
        keep_samples: false,
        seed: 5,
    };
    let clean = baseline(&spec);
    let dir = scratch_dir("degrade");
    let engine = engine_with(2, 16, |o| {
        o.with_cache(CacheOptions::default().with_spill_dir(&dir))
            .with_fault_plan(FaultPlan::seeded(13).with_spill_write_rate(1.0))
    });
    let got = engine
        .sweep(&chaos_circuit(), &chaos_params(8), &spec)
        .expect("degradation must not fail queries");
    assert_eq!(clean, got);
    let stats = engine.cache().stats();
    assert!(stats.degraded, "exhausted write retries flip the latch");
    assert_eq!(stats.spilled_bytes, 0);
    assert!(stats.spill_retries > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadlines_and_compile_timeouts_are_typed_errors_not_hangs() {
    // An already-expired whole-call deadline: typed error from the first
    // cooperative checkpoint.
    let expired = engine_with(2, 16, |o| {
        o.with_budget(QueryBudget::unlimited().with_deadline(Duration::ZERO))
    });
    std::thread::sleep(Duration::from_millis(1));
    let obs = observable;
    let spec = SweepSpec::expectation(&obs);
    let result = expired.sweep(&chaos_circuit(), &chaos_params(4), &spec);
    assert!(
        matches!(result, Err(EngineError::DeadlineExceeded { .. })),
        "got {result:?}"
    );

    // A compile timeout shorter than the injected per-phase delay: the
    // compile-phase checkpoint cancels the compilation mid-pipeline.
    let slow_compile = engine_with(2, 16, |o| {
        o.with_budget(QueryBudget::unlimited().with_compile_timeout(Duration::from_millis(1)))
            .with_fault_plan(FaultPlan::seeded(2).with_compile_delay_secs(0.005))
    });
    match slow_compile.sweep(&chaos_circuit(), &chaos_params(4), &spec) {
        Err(EngineError::DeadlineExceeded { budget, .. }) => {
            assert_eq!(budget, "compile_timeout");
        }
        other => panic!("expected compile_timeout expiry, got {other:?}"),
    }
    // The failed resolution left no artifact behind (the entry keeps its
    // identity, but holds nothing).
    let stats = slow_compile.cache().stats();
    assert_eq!(stats.resident_entries, 0);
    assert_eq!(stats.resident_bytes, 0);
}

#[test]
fn failed_resolutions_strand_no_waiters() {
    // Several threads race for the same (always-failing) compilation.
    // The resolver's failure must restore the cache cell and wake every
    // waiter — each caller then takes its own turn, fails its own typed
    // way, and returns. A stranded waiter would hang this test forever.
    let engine = std::sync::Arc::new(engine_with(4, 16, |o| {
        o.with_budget(QueryBudget::unlimited().with_compile_timeout(Duration::from_millis(1)))
            .with_fault_plan(FaultPlan::seeded(4).with_compile_delay_secs(0.005))
    }));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let engine = std::sync::Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            engine.probabilities(&chaos_circuit(), &chaos_params(1)[0].clone())
        }));
    }
    for h in handles {
        let result = h.join().expect("no panic escapes the engine API");
        assert!(
            matches!(result, Err(EngineError::DeadlineExceeded { .. })),
            "got {result:?}"
        );
    }
    let stats = engine.cache().stats();
    assert_eq!(stats.resident_entries, 0, "no half-built entries remain");
    assert_eq!(stats.resident_bytes, 0);
}

#[test]
fn gradient_sweeps_under_spill_faults_are_byte_identical() {
    // The gradient path shares the artifact cache: spill I/O chaos under
    // an eviction-heavy cache must not move a single derivative bit.
    let obs = observable;
    let spec = GradientSpec {
        observable: &obs,
        wrt: None,
    };
    let clean = engine_with(1, 1, |o| o)
        .gradient_sweep(&chaos_circuit(), &chaos_params(6), &spec)
        .expect("fault-free gradient baseline");
    let dir = scratch_dir("gradient");
    let plan = FaultPlan::seeded(17)
        .with_spill_write_rate(0.5)
        .with_spill_read_rate(0.5)
        .with_spill_torn_rate(0.3);
    for threads in [1usize, 4] {
        let engine = engine_with(threads, 16, |o| {
            o.with_cache(
                CacheOptions::default()
                    .with_max_resident_bytes(1)
                    .with_spill_dir(&dir),
            )
            .with_fault_plan(plan.clone())
        });
        let got = engine
            .gradient_sweep(&chaos_circuit(), &chaos_params(6), &spec)
            .expect("recoverable faults must not fail gradients");
        assert_eq!(clean, got, "threads={threads}: gradients perturbed");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
