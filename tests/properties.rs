//! Property-based integration tests: randomized circuits through every
//! backend must agree.

use proptest::prelude::*;
use qkc::circuit::{Circuit, ParamMap};
use qkc::densitymatrix::DensityMatrixSimulator;
use qkc::kc::KcSimulator;
use qkc::statevector::StateVectorSimulator;
use qkc::tensornet::TensorNetwork;

/// A random circuit instruction.
#[derive(Debug, Clone)]
enum Instr {
    H(usize),
    T(usize),
    X(usize),
    Rx(usize, f64),
    Ry(usize, f64),
    Rz(usize, f64),
    Cnot(usize, usize),
    Cz(usize, usize),
    Zz(usize, usize, f64),
    Swap(usize, usize),
}

fn arb_instr(n: usize) -> impl Strategy<Value = Instr> {
    let q = 0..n;
    let q2 = 0..n;
    let angle = -3.0..3.0f64;
    (0usize..10, q, q2, angle).prop_map(move |(kind, a, b, theta)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Instr::H(a),
            1 => Instr::T(a),
            2 => Instr::X(a),
            3 => Instr::Rx(a, theta),
            4 => Instr::Ry(a, theta),
            5 => Instr::Rz(a, theta),
            6 => Instr::Cnot(a, b),
            7 => Instr::Cz(a, b),
            8 => Instr::Zz(a, b, theta),
            _ => Instr::Swap(a, b),
        }
    })
}

fn build(n: usize, instrs: &[Instr]) -> Circuit {
    let mut c = Circuit::new(n);
    for i in instrs {
        match *i {
            Instr::H(a) => c.h(a),
            Instr::T(a) => c.t(a),
            Instr::X(a) => c.x(a),
            Instr::Rx(a, t) => c.rx(a, t),
            Instr::Ry(a, t) => c.ry(a, t),
            Instr::Rz(a, t) => c.rz(a, t),
            Instr::Cnot(a, b) => c.cnot(a, b),
            Instr::Cz(a, b) => c.cz(a, b),
            Instr::Zz(a, b, t) => c.zz(a, b, t),
            Instr::Swap(a, b) => c.swap(a, b),
        };
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kc_matches_statevector_on_random_circuits(
        instrs in proptest::collection::vec(arb_instr(4), 1..14),
    ) {
        let c = build(4, &instrs);
        let params = ParamMap::new();
        let want = StateVectorSimulator::new().run_pure(&c, &params).unwrap();
        let kc = KcSimulator::compile(&c, &Default::default());
        let bound = kc.bind(&params).unwrap();
        for x in 0..16 {
            prop_assert!(
                bound.amplitude(x, &[]).approx_eq(want.amplitude(x), 1e-8),
                "amp {x}: {} vs {}", bound.amplitude(x, &[]), want.amplitude(x)
            );
        }
    }

    #[test]
    fn tensornet_matches_statevector_on_random_circuits(
        instrs in proptest::collection::vec(arb_instr(4), 1..14),
    ) {
        let c = build(4, &instrs);
        let params = ParamMap::new();
        let want = StateVectorSimulator::new().run_pure(&c, &params).unwrap();
        let tn = TensorNetwork::from_circuit(&c, &params).unwrap();
        for x in 0..16 {
            prop_assert!(tn.amplitude(x).approx_eq(want.amplitude(x), 1e-8));
        }
    }

    #[test]
    fn kc_matches_density_matrix_on_random_noisy_circuits(
        instrs in proptest::collection::vec(arb_instr(3), 1..8),
        noise_kind in 0usize..4,
        p in 0.01..0.4f64,
        noise_q in 0usize..3,
    ) {
        let mut c = build(3, &instrs);
        match noise_kind {
            0 => c.depolarize(noise_q, p),
            1 => c.amplitude_damp(noise_q, p),
            2 => c.phase_damp(noise_q, p),
            _ => c.bit_flip(noise_q, p),
        };
        let params = ParamMap::new();
        let want = DensityMatrixSimulator::new().probabilities(&c, &params).unwrap();
        let kc = KcSimulator::compile(&c, &Default::default());
        let got = kc.bind(&params).unwrap().output_probabilities();
        for x in 0..8 {
            prop_assert!((got[x] - want[x]).abs() < 1e-8,
                "P({x}): {} vs {}", got[x], want[x]);
        }
    }

    #[test]
    fn probabilities_always_normalize(
        instrs in proptest::collection::vec(arb_instr(3), 1..10),
        p in 0.0..0.3f64,
    ) {
        let mut c = build(3, &instrs);
        c.depolarize(0, p);
        let kc = KcSimulator::compile(&c, &Default::default());
        let probs = kc.bind(&ParamMap::new()).unwrap().output_probabilities();
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "total {total}");
        prop_assert!(probs.iter().all(|&x| x >= -1e-12));
    }
}
