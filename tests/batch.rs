//! Property-based tests for the batched evaluation path: `bind_batch` /
//! `evaluate_batch` must match `k` sequential scalar evaluations
//! bit-for-bit on random circuits and parameter sets, and chunked sweeps
//! must be identical for every batch width and thread count.

use proptest::prelude::*;
use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::engine::{BackendKind, Engine, EngineOptions, SweepSpec};
use qkc::kc::KcSimulator;
use qkc::knowledge::LANE_WIDTH;
use qkc::math::Complex;

/// Batch widths straddling the lane-block boundaries of the blocked
/// layout: a lone lane, one short of a block, exactly one block, one into
/// the second block, and a ragged three-block batch. Every width must be
/// bit-for-bit the scalar path — dead remainder lanes change nothing.
const RAGGED_WIDTHS: [usize; 5] = [
    1,
    LANE_WIDTH - 1,
    LANE_WIDTH,
    LANE_WIDTH + 1,
    2 * LANE_WIDTH + 3,
];

/// A random parameterized circuit instruction; rotation angles reference
/// one of two symbols so every circuit stays re-bindable.
#[derive(Debug, Clone)]
enum Instr {
    H(usize),
    T(usize),
    RxA(usize),
    RyB(usize),
    RzA(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    ZzB(usize, usize),
}

fn arb_instr(n: usize) -> impl Strategy<Value = Instr> {
    let q = 0..n;
    let q2 = 0..n;
    (0usize..8, q, q2).prop_map(move |(kind, a, b)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Instr::H(a),
            1 => Instr::T(a),
            2 => Instr::RxA(a),
            3 => Instr::RyB(a),
            4 => Instr::RzA(a),
            5 => Instr::Cnot(a, b),
            6 => Instr::Cz(a, b),
            _ => Instr::ZzB(a, b),
        }
    })
}

fn build(n: usize, instrs: &[Instr]) -> Circuit {
    let mut c = Circuit::new(n);
    for i in instrs {
        match *i {
            Instr::H(a) => c.h(a),
            Instr::T(a) => c.t(a),
            Instr::RxA(a) => c.rx(a, Param::symbol("a")),
            Instr::RyB(a) => c.ry(a, Param::symbol("b")),
            Instr::RzA(a) => c.rz(a, Param::symbol("a")),
            Instr::Cnot(a, b) => c.cnot(a, b),
            Instr::Cz(a, b) => c.cz(a, b),
            Instr::ZzB(a, b) => c.zz(a, b, Param::symbol("b")),
        };
    }
    c
}

fn param_sets(values: &[(f64, f64)]) -> Vec<ParamMap> {
    values
        .iter()
        .map(|&(a, b)| ParamMap::from_pairs([("a", a), ("b", b)]))
        .collect()
}

fn bits_eq(x: Complex, y: Complex) -> bool {
    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `bind_batch` wavefunctions equal `k` sequential scalar binds, bit
    /// for bit, on random pure circuits — at every ragged width straddling
    /// the lane-block boundaries.
    #[test]
    fn bind_batch_matches_sequential_scalar_binds(
        instrs in proptest::collection::vec(arb_instr(3), 1..12),
        angles in proptest::collection::vec(
            (-3.0..3.0f64, -3.0..3.0f64),
            2 * LANE_WIDTH + 3,
        ),
    ) {
        let c = build(3, &instrs);
        let sim = KcSimulator::compile(&c, &Default::default());
        let params = param_sets(&angles);
        let scalars: Vec<Vec<Complex>> = params
            .iter()
            .map(|p| sim.bind(p).unwrap().wavefunction())
            .collect();
        for k in RAGGED_WIDTHS {
            let batch = sim.bind_batch(&params[..k]).unwrap();
            let wfs = batch.wavefunctions();
            for (lane, scalar) in scalars[..k].iter().enumerate() {
                for (x, (&got, &want)) in wfs[lane].iter().zip(scalar).enumerate() {
                    prop_assert!(
                        bits_eq(got, want),
                        "k={k} lane {lane} amp {x}: {got} vs {want}"
                    );
                }
            }
        }
    }

    /// Same contract on noisy circuits, through the random-event
    /// enumeration of `output_probabilities`, at ragged widths around one
    /// lane block.
    #[test]
    fn batched_noisy_probabilities_match_scalar(
        instrs in proptest::collection::vec(arb_instr(2), 1..8),
        angles in proptest::collection::vec(
            (-3.0..3.0f64, -3.0..3.0f64),
            LANE_WIDTH + 1,
        ),
        noise_q in 0usize..2,
    ) {
        let mut c = build(2, &instrs);
        c.depolarize(noise_q, 0.05);
        let sim = KcSimulator::compile(&c, &Default::default());
        let params = param_sets(&angles);
        let scalars: Vec<Vec<f64>> = params
            .iter()
            .map(|p| sim.bind(p).unwrap().output_probabilities())
            .collect();
        for k in [1usize, LANE_WIDTH - 1, LANE_WIDTH, LANE_WIDTH + 1] {
            let batch = sim.bind_batch(&params[..k]).unwrap();
            let probs = batch.output_probabilities();
            for (lane, scalar) in scalars[..k].iter().enumerate() {
                for (x, (&got, &want)) in probs[lane].iter().zip(scalar).enumerate() {
                    prop_assert!(
                        got.to_bits() == want.to_bits(),
                        "k={k} lane {lane} P({x}): {got} vs {want}"
                    );
                }
            }
        }
    }

    /// Engine sweeps are byte-identical for every batch width and thread
    /// count — the chunking contract of the sweep executor.
    #[test]
    fn chunked_sweeps_are_identical_across_batch_widths(
        instrs in proptest::collection::vec(arb_instr(2), 1..8),
        angles in proptest::collection::vec((-3.0..3.0f64, -3.0..3.0f64), 2..8),
    ) {
        let c = build(2, &instrs);
        let params = param_sets(&angles);
        let obs = |bits: usize| bits as f64;
        let run = |threads: usize, batch: usize| {
            let engine = Engine::with_options(
                EngineOptions::default()
                    .with_backend(BackendKind::KnowledgeCompilation)
                    .with_threads(threads)
                    .with_batch(batch),
            );
            engine
                .sweep(&c, &params, &SweepSpec::expectation(&obs).with_seed(3))
                .unwrap()
        };
        let base = run(1, 1);
        for threads in [1usize, 2, 4] {
            for batch in [1usize, LANE_WIDTH, 16] {
                prop_assert_eq!(
                    &base,
                    &run(threads, batch),
                    "threads={} batch={} changed the sweep",
                    threads,
                    batch
                );
            }
        }
    }
}

/// The variational loop's simplex batches ride the batched path; the
/// optimizer trajectory must not depend on the batch width.
#[test]
fn variational_runs_are_identical_across_batch_widths() {
    use qkc::engine::{minimize_variational, VariationalConfig};
    use qkc::optim::NelderMead;
    let mut c = Circuit::new(2);
    c.rx(0, Param::symbol("t"))
        .cnot(0, 1)
        .ry(1, Param::symbol("u"));
    let run = |batch: usize| {
        let engine = Engine::with_options(
            EngineOptions::default()
                .with_backend(BackendKind::KnowledgeCompilation)
                .with_batch(batch),
        );
        minimize_variational(
            &engine,
            &c,
            |x| ParamMap::from_pairs([("t", x[0]), ("u", x[1])]),
            &|bits| bits as f64,
            &[1.9, -0.7],
            &VariationalConfig {
                optimizer: NelderMead::new().with_max_iterations(60),
                shots: 0,
                seed: 4,
            },
        )
        .unwrap()
    };
    let base = run(1);
    for batch in [3usize, 8, 16] {
        let got = run(batch);
        assert_eq!(
            base.optim.x, got.optim.x,
            "batch={batch} changed the optimum"
        );
        assert_eq!(
            base.optim.value.to_bits(),
            got.optim.value.to_bits(),
            "batch={batch} changed the objective value"
        );
        assert_eq!(base.optim.evaluations, got.optim.evaluations);
    }
}

/// `evaluate_batch_delta` promises to be "always safe to call": it must
/// trust its cached lane-blocked value planes only when they came from the
/// batched upward kernel, on the same tape, at the same lane count — and
/// fall back to a full pass otherwise. Exercised at every ragged width:
/// each width change leaves a cached buffer of the *wrong* lane count
/// behind for the next iteration's leading delta call.
#[test]
fn evaluate_batch_delta_gates_on_cached_buffer_validity() {
    use qkc::cnf::Cnf;
    use qkc::knowledge::{
        compile, smooth, AcTape, AcWeights, AcWeightsBatch, CompileOptions, TapeEvaluator,
    };
    use qkc::math::C_ONE;

    let mut f = Cnf::new(3);
    f.add_clause(vec![1, 2]);
    f.add_clause(vec![-1, 3]);
    let compiled = compile(&f, &CompileOptions::default());
    let nnf = smooth(&compiled.nnf, &[vec![1, -1], vec![2, -2], vec![3, -3]]);
    let tape = AcTape::lower(&nnf);
    let bits = |amps: &[Complex]| -> Vec<(u64, u64)> {
        amps.iter()
            .map(|a| (a.re.to_bits(), a.im.to_bits()))
            .collect()
    };
    let mut eval = TapeEvaluator::new();
    for k in RAGGED_WIDTHS {
        let mut w = AcWeightsBatch::uniform(3, k);
        for lane in 0..k {
            for v in 1..=3u32 {
                let wv = Complex::new(
                    0.1 + 0.2 * v as f64 + 0.05 * lane as f64,
                    0.3 - 0.01 * lane as f64,
                );
                w.set_lane(v, lane, wv, C_ONE);
            }
        }
        // Leading delta call: the cached buffer (if any) has last
        // iteration's lane count, so this must re-run the full kernel.
        let full = bits(eval.evaluate_batch_delta(&tape, &w, &[]));
        let fresh = bits(TapeEvaluator::new().evaluate_batch(&tape, &w));
        assert_eq!(full, fresh, "k={k}: stale lane count not re-gated");
        // A scalar kernel pass overwrites the mode tag; the next delta
        // call must not trust the now-foreign buffer.
        let mut sw = AcWeights::uniform(3);
        sw.set(1, Complex::real(0.25), C_ONE);
        let _ = eval.evaluate(&tape, &sw);
        let regated = bits(eval.evaluate_batch_delta(&tape, &w, &[]));
        assert_eq!(regated, fresh, "k={k}: scalar interleave corrupted delta");
        // With a valid cache, a genuine single-variable change listed in
        // `changed_vars` matches a from-scratch full pass bit-for-bit.
        for lane in 0..k {
            w.set_lane(2, lane, Complex::new(0.9 - 0.03 * lane as f64, -0.2), C_ONE);
        }
        let delta = bits(eval.evaluate_batch_delta(&tape, &w, &[2]));
        let recomputed = bits(TapeEvaluator::new().evaluate_batch(&tape, &w));
        assert_eq!(delta, recomputed, "k={k}: delta diverged from full pass");
    }
}
