//! Property-based tests for the batched evaluation path: `bind_batch` /
//! `evaluate_batch` must match `k` sequential scalar evaluations
//! bit-for-bit on random circuits and parameter sets, and chunked sweeps
//! must be identical for every batch width and thread count.

use proptest::prelude::*;
use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::engine::{BackendKind, Engine, EngineOptions, SweepSpec};
use qkc::kc::KcSimulator;
use qkc::math::Complex;

/// A random parameterized circuit instruction; rotation angles reference
/// one of two symbols so every circuit stays re-bindable.
#[derive(Debug, Clone)]
enum Instr {
    H(usize),
    T(usize),
    RxA(usize),
    RyB(usize),
    RzA(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    ZzB(usize, usize),
}

fn arb_instr(n: usize) -> impl Strategy<Value = Instr> {
    let q = 0..n;
    let q2 = 0..n;
    (0usize..8, q, q2).prop_map(move |(kind, a, b)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Instr::H(a),
            1 => Instr::T(a),
            2 => Instr::RxA(a),
            3 => Instr::RyB(a),
            4 => Instr::RzA(a),
            5 => Instr::Cnot(a, b),
            6 => Instr::Cz(a, b),
            _ => Instr::ZzB(a, b),
        }
    })
}

fn build(n: usize, instrs: &[Instr]) -> Circuit {
    let mut c = Circuit::new(n);
    for i in instrs {
        match *i {
            Instr::H(a) => c.h(a),
            Instr::T(a) => c.t(a),
            Instr::RxA(a) => c.rx(a, Param::symbol("a")),
            Instr::RyB(a) => c.ry(a, Param::symbol("b")),
            Instr::RzA(a) => c.rz(a, Param::symbol("a")),
            Instr::Cnot(a, b) => c.cnot(a, b),
            Instr::Cz(a, b) => c.cz(a, b),
            Instr::ZzB(a, b) => c.zz(a, b, Param::symbol("b")),
        };
    }
    c
}

fn param_sets(values: &[(f64, f64)]) -> Vec<ParamMap> {
    values
        .iter()
        .map(|&(a, b)| ParamMap::from_pairs([("a", a), ("b", b)]))
        .collect()
}

fn bits_eq(x: Complex, y: Complex) -> bool {
    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `bind_batch` wavefunctions equal `k` sequential scalar binds,
    /// bit for bit, on random pure circuits and parameter sets.
    #[test]
    fn bind_batch_matches_sequential_scalar_binds(
        instrs in proptest::collection::vec(arb_instr(3), 1..12),
        angles in proptest::collection::vec((-3.0..3.0f64, -3.0..3.0f64), 1..9),
    ) {
        let c = build(3, &instrs);
        let sim = KcSimulator::compile(&c, &Default::default());
        let params = param_sets(&angles);
        let batch = sim.bind_batch(&params).unwrap();
        let wfs = batch.wavefunctions();
        for (lane, p) in params.iter().enumerate() {
            let scalar = sim.bind(p).unwrap().wavefunction();
            for (x, (&got, &want)) in wfs[lane].iter().zip(&scalar).enumerate() {
                prop_assert!(
                    bits_eq(got, want),
                    "lane {lane} amp {x}: {got} vs {want}"
                );
            }
        }
    }

    /// Same contract on noisy circuits, through the random-event
    /// enumeration of `output_probabilities`.
    #[test]
    fn batched_noisy_probabilities_match_scalar(
        instrs in proptest::collection::vec(arb_instr(2), 1..8),
        angles in proptest::collection::vec((-3.0..3.0f64, -3.0..3.0f64), 1..5),
        noise_q in 0usize..2,
    ) {
        let mut c = build(2, &instrs);
        c.depolarize(noise_q, 0.05);
        let sim = KcSimulator::compile(&c, &Default::default());
        let params = param_sets(&angles);
        let batch = sim.bind_batch(&params).unwrap();
        let probs = batch.output_probabilities();
        for (lane, p) in params.iter().enumerate() {
            let scalar = sim.bind(p).unwrap().output_probabilities();
            for (x, (&got, &want)) in probs[lane].iter().zip(&scalar).enumerate() {
                prop_assert!(
                    got.to_bits() == want.to_bits(),
                    "lane {lane} P({x}): {got} vs {want}"
                );
            }
        }
    }

    /// Engine sweeps are byte-identical for every batch width and thread
    /// count — the chunking contract of the sweep executor.
    #[test]
    fn chunked_sweeps_are_identical_across_batch_widths(
        instrs in proptest::collection::vec(arb_instr(2), 1..8),
        angles in proptest::collection::vec((-3.0..3.0f64, -3.0..3.0f64), 2..8),
    ) {
        let c = build(2, &instrs);
        let params = param_sets(&angles);
        let obs = |bits: usize| bits as f64;
        let run = |threads: usize, batch: usize| {
            let engine = Engine::with_options(
                EngineOptions::default()
                    .with_backend(BackendKind::KnowledgeCompilation)
                    .with_threads(threads)
                    .with_batch(batch),
            );
            engine
                .sweep(&c, &params, &SweepSpec::expectation(&obs).with_seed(3))
                .unwrap()
        };
        let base = run(1, 1);
        for threads in [1usize, 3] {
            for batch in [1usize, 3, 8] {
                prop_assert_eq!(
                    &base,
                    &run(threads, batch),
                    "threads={} batch={} changed the sweep",
                    threads,
                    batch
                );
            }
        }
    }
}

/// The variational loop's simplex batches ride the batched path; the
/// optimizer trajectory must not depend on the batch width.
#[test]
fn variational_runs_are_identical_across_batch_widths() {
    use qkc::engine::{minimize_variational, VariationalConfig};
    use qkc::optim::NelderMead;
    let mut c = Circuit::new(2);
    c.rx(0, Param::symbol("t"))
        .cnot(0, 1)
        .ry(1, Param::symbol("u"));
    let run = |batch: usize| {
        let engine = Engine::with_options(
            EngineOptions::default()
                .with_backend(BackendKind::KnowledgeCompilation)
                .with_batch(batch),
        );
        minimize_variational(
            &engine,
            &c,
            |x| ParamMap::from_pairs([("t", x[0]), ("u", x[1])]),
            &|bits| bits as f64,
            &[1.9, -0.7],
            &VariationalConfig {
                optimizer: NelderMead::new().with_max_iterations(60),
                shots: 0,
                seed: 4,
            },
        )
        .unwrap()
    };
    let base = run(1);
    for batch in [3usize, 8, 16] {
        let got = run(batch);
        assert_eq!(
            base.optim.x, got.optim.x,
            "batch={batch} changed the optimum"
        );
        assert_eq!(
            base.optim.value.to_bits(),
            got.optim.value.to_bits(),
            "batch={batch} changed the objective value"
        );
        assert_eq!(base.optim.evaluations, got.optim.evaluations);
    }
}
