//! The certifying static verifier's teeth: every compiled artifact in
//! the suite verifies clean at the default (full) level, and seeded
//! single mutations of valid wire payloads — opcode flips, topology
//! swaps, slot clobbers, poisoned constants, orphaned instructions — are
//! each caught by the *named* analyzer pass.
//!
//! Mutations are performed at the wire level (flip bytes, re-stamp the
//! FNV-1a trailer) so every seeded corruption travels the same path a
//! torn or hostile spill file would.

use proptest::prelude::*;
use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::engine::{BackendKind, CacheOptions, Engine, EngineOptions};
use qkc::kc::{KcOptions, KcSimulator};
use qkc::knowledge::{
    verify_tangent_plan, verify_tape, verify_tape_bytes, AcTape, AcWeights, NnfBuilder, Severity,
    TangentPlan, TapeDecodeError, VerifyLevel, VerifyPass,
};
use std::path::PathBuf;

/// Byte offset of the instruction section in the tape wire format
/// (magic 4 + version 2 + reserved 2 + root 4 + weight_slots 4 + four
/// u32 section counts).
const OPS_START: usize = 32;
/// Bytes per serialized instruction: opcode byte + two payload words.
const OP_BYTES: usize = 9;

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn num_ops(bytes: &[u8]) -> usize {
    read_u32(bytes, 16) as usize
}

/// `(kind, a, b)` of instruction `i`.
fn op_at(bytes: &[u8], i: usize) -> (u8, u32, u32) {
    let at = OPS_START + i * OP_BYTES;
    (bytes[at], read_u32(bytes, at + 1), read_u32(bytes, at + 5))
}

fn write_op(bytes: &mut [u8], i: usize, kind: u8, a: u32, b: u32) {
    let at = OPS_START + i * OP_BYTES;
    bytes[at] = kind;
    bytes[at + 1..at + 5].copy_from_slice(&a.to_le_bytes());
    bytes[at + 5..at + 9].copy_from_slice(&b.to_le_bytes());
}

/// Recomputes the trailing FNV-1a checksum after a mutation, so decode
/// sees a payload whose envelope is intact and only the *structure* (or
/// semantics) is corrupt.
fn restamp(bytes: &mut [u8]) {
    let n = bytes.len() - 8;
    let sum = qkc::knowledge::wire_checksum(&bytes[..n]);
    bytes[n..].copy_from_slice(&sum.to_le_bytes());
}

/// A parameterized noisy test circuit with deterministic disjunctions
/// (decision ORs), smoothing gadgets, and a noise random event.
fn mutation_target() -> (Circuit, ParamMap) {
    let mut c = Circuit::new(3);
    c.h(0)
        .rx(1, Param::symbol("a"))
        .cnot(0, 1)
        .t(2)
        .cnot(1, 2)
        .depolarize(0, 0.05);
    (c, ParamMap::from_pairs([("a", 0.37)]))
}

fn compile(c: &Circuit) -> KcSimulator {
    KcSimulator::compile(c, &KcOptions::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every compiled artifact — fresh and round-tripped through the
    /// wire format — verifies with zero error-severity findings at the
    /// full level, across random pure and noisy circuits.
    #[test]
    fn compiled_artifacts_verify_clean(
        seed in proptest::collection::vec((0usize..6, 0usize..3), 1..10),
        a in -2.0..2.0f64,
        noisy in 0usize..2,
    ) {
        let mut c = Circuit::new(3);
        for &(kind, q) in &seed {
            match kind {
                0 => c.h(q),
                1 => c.t(q),
                2 => c.rx(q, Param::symbol("a")),
                3 => c.cnot(q, (q + 1) % 3),
                4 => c.cz(q, (q + 1) % 3),
                _ => c.rz(q, Param::symbol("a")),
            };
        }
        if noisy == 1 {
            c.phase_damp(0, 0.1);
        }
        let sim = compile(&c);
        let report = sim
            .verify_with_params(&ParamMap::from_pairs([("a", a)]), VerifyLevel::Full)
            .expect("params bind");
        prop_assert!(
            report.is_clean(),
            "fresh artifact failed verification:\n{}",
            report.render()
        );

        // The wire round-trip preserves certification.
        let bytes = sim.tape().to_bytes();
        let groups = sim.smoothness_groups();
        let round = verify_tape_bytes(&bytes, &groups, VerifyLevel::Full).expect("decodes");
        prop_assert!(
            round.is_clean(),
            "round-tripped artifact failed verification:\n{}",
            round.render()
        );
    }
}

/// Flipping a sum opcode into a product (Or → And2) breaks
/// decomposability — the branches of a deterministic disjunction share
/// their decision variable — and the decomposability pass names it.
#[test]
fn or_to_and2_flip_is_caught_by_decomposability() {
    let (c, _) = mutation_target();
    let sim = compile(&c);
    let bytes = sim.tape().to_bytes();
    let groups = sim.smoothness_groups();
    let mut caught = 0usize;
    for i in 0..num_ops(&bytes) {
        let (kind, a, b) = op_at(&bytes, i);
        if kind != 4 {
            continue;
        }
        let mut mutated = bytes.clone();
        write_op(&mut mutated, i, 2, a, b);
        restamp(&mut mutated);
        let report = verify_tape_bytes(&mutated, &groups, VerifyLevel::Full).expect("decodes");
        if report
            .findings()
            .iter()
            .any(|f| f.pass == VerifyPass::Decomposability && f.severity == Severity::Error)
        {
            caught += 1;
        }
    }
    assert!(
        caught > 0,
        "no Or→And2 flip was caught by the decomposability pass"
    );
}

/// Swapping branches between two sums breaks smoothness — each sum now
/// mixes branches from different decision contexts, so its children
/// cover different query groups — and the smoothness pass names it.
/// The cross-swap keeps every instruction reachable and every checksum
/// restampable: the scan insists on a mutant with *no* structural
/// finding, exactly the corruption class checksums and well-formedness
/// cannot see.
#[test]
fn sum_branch_swap_is_caught_by_smoothness() {
    let (c, _) = mutation_target();
    let sim = compile(&c);
    let bytes = sim.tape().to_bytes();
    let groups = sim.smoothness_groups();
    assert!(!groups.is_empty(), "query groups exist for a noisy circuit");
    let ors: Vec<usize> = (0..num_ops(&bytes))
        .filter(|&i| op_at(&bytes, i).0 == 4)
        .collect();
    let mut sound = 0usize;
    let mut caught = 0usize;
    for (x, &i) in ors.iter().enumerate() {
        for &k in &ors[x + 1..] {
            let (_, ai, bi) = op_at(&bytes, i);
            let (_, ak, bk) = op_at(&bytes, k);
            // The incoming branch must stay topologically earlier, and
            // neither sum may degenerate into `Or(x, x)`.
            if bk as usize >= i || bk == ai || bi == ak {
                continue;
            }
            let mut mutated = bytes.clone();
            write_op(&mut mutated, i, 4, ai, bk);
            write_op(&mut mutated, k, 4, ak, bi);
            restamp(&mut mutated);
            let report =
                verify_tape_bytes(&mutated, &groups, VerifyLevel::Full).expect("reportable");
            if report
                .findings()
                .iter()
                .any(|f| f.pass == VerifyPass::TapeWellFormed)
            {
                continue;
            }
            sound += 1;
            if report
                .findings()
                .iter()
                .any(|f| f.pass == VerifyPass::Smoothness && f.severity == Severity::Error)
            {
                caught += 1;
            }
        }
    }
    assert!(sound > 0, "some branch swap is structurally invisible");
    assert_eq!(
        caught, sound,
        "every structurally-sound branch swap is caught by the smoothness pass"
    );
}

/// Breaking topological order (a parent whose child reference points at
/// itself, as a reorder would produce) is rejected at decode and named
/// by the well-formedness pass.
#[test]
fn topology_break_is_caught_by_well_formedness() {
    let (c, _) = mutation_target();
    let sim = compile(&c);
    let bytes = sim.tape().to_bytes();
    let i = (0..num_ops(&bytes))
        .find(|&i| matches!(op_at(&bytes, i).0, 2 | 4))
        .expect("an inner node exists");
    let (kind, _, b) = op_at(&bytes, i);
    let mut mutated = bytes.clone();
    write_op(&mut mutated, i, kind, i as u32, b);
    restamp(&mut mutated);
    assert_eq!(
        AcTape::from_bytes(&mutated).unwrap_err(),
        TapeDecodeError::Malformed("child after parent")
    );
    let report = verify_tape_bytes(&mutated, &[], VerifyLevel::Full).expect("reportable");
    assert!(report.findings().iter().any(|f| {
        f.pass == VerifyPass::TapeWellFormed
            && f.severity == Severity::Error
            && f.message == "child after parent"
    }));
}

/// Clobbering a literal instruction's weight slot is caught by the
/// well-formedness pass (the precomputed slot must match the literal).
#[test]
fn weight_slot_clobber_is_caught_by_well_formedness() {
    let (c, _) = mutation_target();
    let sim = compile(&c);
    let bytes = sim.tape().to_bytes();
    let i = (0..num_ops(&bytes))
        .find(|&i| op_at(&bytes, i).0 == 1)
        .expect("a literal instruction exists");
    let (_, a, b) = op_at(&bytes, i);
    let mut mutated = bytes.clone();
    // Point the literal at its sibling polarity's slot.
    write_op(&mut mutated, i, 1, a ^ 1, b);
    restamp(&mut mutated);
    assert_eq!(
        AcTape::from_bytes(&mutated).unwrap_err(),
        TapeDecodeError::Malformed("literal/slot mismatch")
    );
}

/// Clobbering the literal→slot table is caught by the well-formedness
/// pass (every entry must point at its matching literal instruction).
#[test]
fn literal_table_clobber_is_caught_by_well_formedness() {
    let (c, _) = mutation_target();
    let sim = compile(&c);
    let bytes = sim.tape().to_bytes();
    let n_ops = num_ops(&bytes);
    let n_edges = read_u32(&bytes, 20) as usize;
    let n_consts = read_u32(&bytes, 24) as usize;
    let n_lits = read_u32(&bytes, 28) as usize;
    assert!(n_lits > 0);
    let lits_start = OPS_START + n_ops * OP_BYTES + n_edges * 4 + n_consts * 16;
    // Redirect the first entry's slot word at a non-literal instruction
    // (the root is always a product or sum for these circuits).
    let root = read_u32(&bytes, 8);
    let mut mutated = bytes.clone();
    mutated[lits_start + 4..lits_start + 8].copy_from_slice(&root.to_le_bytes());
    restamp(&mut mutated);
    assert_eq!(
        AcTape::from_bytes(&mutated).unwrap_err(),
        TapeDecodeError::Malformed("literal table points astray")
    );
}

/// Clobbering the root word out of range is caught by the
/// well-formedness pass.
#[test]
fn root_clobber_is_caught_by_well_formedness() {
    let (c, _) = mutation_target();
    let sim = compile(&c);
    let mut mutated = sim.tape().to_bytes();
    let n = num_ops(&mutated) as u32;
    mutated[8..12].copy_from_slice(&n.to_le_bytes());
    restamp(&mut mutated);
    assert_eq!(
        AcTape::from_bytes(&mutated).unwrap_err(),
        TapeDecodeError::Malformed("root out of range")
    );
}

/// A poisoned (non-finite) constant is caught by the well-formedness
/// pass — NaN amplitudes would silently corrupt every query downstream.
#[test]
fn nan_constant_is_caught_by_well_formedness() {
    // Craft a tape with a live constant: `or(lit(1), ⊤)` keeps the folded
    // ⊤ as a constant instruction (sums never fold — the RNG-stream
    // contract), then poison its IEEE bits on the wire.
    let mut b = NnfBuilder::new();
    let l = b.lit(1);
    let t = b.true_id();
    let root = b.or(l, t);
    let nnf = b.extract(root);
    let tape = AcTape::lower(&nnf);
    let n_consts = read_u32(&tape.to_bytes(), 24) as usize;
    assert!(n_consts > 0, "crafted tape carries a constant");
    let mut mutated = tape.to_bytes();
    let n_ops = num_ops(&mutated);
    let n_edges = read_u32(&mutated, 20) as usize;
    let consts_start = OPS_START + n_ops * OP_BYTES + n_edges * 4;
    mutated[consts_start..consts_start + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    restamp(&mut mutated);
    assert_eq!(
        AcTape::from_bytes(&mutated).unwrap_err(),
        TapeDecodeError::Malformed("non-finite constant")
    );
}

/// Redirecting a child edge so an instruction becomes unreachable is
/// caught by the well-formedness pass (the pruning contract: lowering
/// never emits dead instructions).
#[test]
fn orphaned_instruction_is_caught_by_well_formedness() {
    let (c, _) = mutation_target();
    let sim = compile(&c);
    let bytes = sim.tape().to_bytes();
    let mut caught = false;
    for i in 0..num_ops(&bytes) {
        let (kind, a, b) = op_at(&bytes, i);
        if !matches!(kind, 2 | 4) || a == b {
            continue;
        }
        // Flip one child edge to the other: if the dropped child had no
        // other parent, it is now dead.
        let mut mutated = bytes.clone();
        write_op(&mut mutated, i, kind, a, a);
        restamp(&mut mutated);
        if matches!(
            AcTape::from_bytes(&mutated),
            Err(TapeDecodeError::Malformed("dead instruction"))
        ) {
            caught = true;
            break;
        }
    }
    assert!(caught, "no edge flip produced a detected orphan");
}

/// Tangent-plan references are validated against the tape they will be
/// contracted over: a plan built for one tape carries slots a smaller
/// tape cannot satisfy.
#[test]
fn tangent_plan_references_are_checked() {
    let (c, _) = mutation_target();
    let sim = compile(&c);
    let tape = sim.tape();
    let tangents = AcWeights::uniform(
        tape.lit_slots()
            .iter()
            .map(|&(l, _)| l.unsigned_abs())
            .max()
            .unwrap() as usize,
    );
    let plan = TangentPlan::new(tape, &tangents);
    assert!(plan.len() > 1, "every surviving literal carries a tangent");
    assert!(
        verify_tangent_plan(&plan, tape).is_empty(),
        "a plan built for this tape verifies against it"
    );

    // A single-instruction tape cannot satisfy the plan's slots.
    let mut b = NnfBuilder::new();
    let root = b.lit(1);
    let tiny = AcTape::lower(&b.extract(root));
    let findings = verify_tangent_plan(&plan, &tiny);
    assert!(!findings.is_empty());
    assert!(findings
        .iter()
        .all(|f| f.pass == VerifyPass::SlotLiveness && f.severity == Severity::Error));
}

/// `Engine::verify` certifies a workload artifact end to end and
/// reports unbound parameters as typed errors.
#[test]
fn engine_verify_certifies_and_types_unbound_params() {
    let (c, params) = mutation_target();
    let engine = Engine::new();
    let report = engine.verify(&c, &params).expect("verifies");
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        report
            .pass_seconds()
            .iter()
            .any(|&(p, _)| p == VerifyPass::ModelLints),
        "model lints ran under the binding"
    );
    assert!(
        engine.verify(&c, &ParamMap::new()).is_err(),
        "unbound param is typed"
    );
}

/// Locates the embedded tape section (`QKTP`…) inside a serialized
/// artifact and returns its byte range.
fn embedded_tape_range(artifact: &[u8]) -> std::ops::Range<usize> {
    let start = artifact
        .windows(4)
        .position(|w| w == b"QKTP")
        .expect("artifact embeds a tape");
    let n_ops = num_ops(&artifact[start..]);
    let n_edges = read_u32(&artifact[start..], 20) as usize;
    let n_consts = read_u32(&artifact[start..], 24) as usize;
    let n_lits = read_u32(&artifact[start..], 28) as usize;
    let len = OPS_START + n_ops * OP_BYTES + n_edges * 4 + n_consts * 16 + n_lits * 8 + 8;
    start..start + len
}

/// A unique scratch dir per call (std-only; removed by the caller).
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qkc-verify-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The rehydration trust boundary: a spill file whose checksums are
/// intact but whose *semantics* were corrupted (a sum flipped into a
/// product) decodes fine, fails static verification, and is quarantined
/// and recompiled over — with the recompiled answers correct.
#[test]
fn semantically_corrupt_spill_artifact_is_quarantined_by_verifier() {
    let (c, params) = mutation_target();
    let dir = scratch_dir("quarantine");
    let kc = EngineOptions::default().with_backend(BackendKind::KnowledgeCompilation);
    let first = Engine::with_options(
        kc.clone()
            .with_cache(CacheOptions::default().with_spill_dir(&dir)),
    );
    let want = first.probabilities(&c, &params).expect("probabilities");
    drop(first);
    let spill_file = std::fs::read_dir(&dir)
        .expect("read spill dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.is_file())
        .expect("a spill file was written");

    // Corrupt the embedded tape: flip an Or whose mutation the verifier
    // provably rejects, then re-stamp both nested checksums.
    let mut artifact = std::fs::read(&spill_file).expect("read spill file");
    let range = embedded_tape_range(&artifact);
    let mut flipped = None;
    for i in 0..num_ops(&artifact[range.clone()]) {
        let (kind, a, b) = op_at(&artifact[range.clone()], i);
        if kind != 4 {
            continue;
        }
        let mut tape_bytes = artifact[range.clone()].to_vec();
        write_op(&mut tape_bytes, i, 2, a, b);
        restamp(&mut tape_bytes);
        let tape = AcTape::from_bytes(&tape_bytes).expect("still decodes");
        if !verify_tape(&tape, &[], VerifyLevel::Full).is_clean() {
            flipped = Some(tape_bytes);
            break;
        }
    }
    let tape_bytes = flipped.expect("a rejectable Or flip exists");
    artifact[range].copy_from_slice(&tape_bytes);
    let n = artifact.len() - 8;
    let sum = qkc::knowledge::wire_checksum(&artifact[..n]);
    artifact[n..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&spill_file, &artifact).expect("write corrupted spill file");

    // A fresh engine over the warm-but-poisoned dir, verification on:
    // the artifact must be rejected and recompiled, not trusted.
    let second = Engine::with_options(
        kc.with_cache(
            CacheOptions::default()
                .with_spill_dir(&dir)
                .with_verify(VerifyLevel::Full),
        ),
    );
    let got = second.probabilities(&c, &params).expect("probabilities");
    assert_eq!(got, want, "recompiled artifact answers correctly");
    let stats = second.cache().stats();
    assert_eq!(
        stats.misses, 1,
        "corrupt artifact must be recompiled, not rehydrated: {stats:?}"
    );
    assert_eq!(stats.spill_hits, 0, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
