//! Cross-simulator agreement: the knowledge-compilation pipeline, the
//! state-vector simulator, the density-matrix simulator, the tensor-network
//! simulator, and the naive reference simulator must all tell the same
//! story on the same circuits.

use qkc::circuit::{reference, Circuit, NoiseChannel, ParamMap};
use qkc::densitymatrix::DensityMatrixSimulator;
use qkc::kc::KcSimulator;
use qkc::statevector::StateVectorSimulator;
use qkc::tensornet::TensorNetwork;
use qkc::workloads::{algorithms, Graph, QaoaMaxCut, RandomCircuit, VqeIsing};

fn check_all_pure(circuit: &Circuit, params: &ParamMap) {
    let want = reference::run_pure(circuit, params).expect("reference");
    let sv = StateVectorSimulator::new()
        .run_pure(circuit, params)
        .expect("statevector");
    let tn = TensorNetwork::from_circuit(circuit, params).expect("tensornet");
    let kc = KcSimulator::compile(circuit, &Default::default());
    let bound = kc.bind(params).expect("bind");
    for (x, &w) in want.iter().enumerate() {
        assert!(
            sv.amplitude(x).approx_eq(w, 1e-9),
            "statevector amp {x}: {} vs {w}",
            sv.amplitude(x)
        );
        assert!(
            tn.amplitude(x).approx_eq(w, 1e-9),
            "tensornet amp {x}: {} vs {w}",
            tn.amplitude(x)
        );
        assert!(
            bound.amplitude(x, &[]).approx_eq(w, 1e-9),
            "kc amp {x}: {} vs {w}",
            bound.amplitude(x, &[])
        );
    }
}

fn check_kc_noisy(circuit: &Circuit, params: &ParamMap) {
    let want = DensityMatrixSimulator::new()
        .run(circuit, params)
        .expect("density");
    let kc = KcSimulator::compile(circuit, &Default::default());
    let got = kc.bind(params).expect("bind").density_matrix();
    for r in 0..want.dim() {
        for c in 0..want.dim() {
            assert!(
                got[(r, c)].approx_eq(want.entry(r, c), 1e-8),
                "rho[{r},{c}]: {} vs {}",
                got[(r, c)],
                want.entry(r, c)
            );
        }
    }
}

#[test]
fn bell_ghz_and_qft_agree_everywhere() {
    check_all_pure(&algorithms::bell_circuit(), &ParamMap::new());

    let mut ghz = Circuit::new(4);
    ghz.h(0).cnot(0, 1).cnot(1, 2).cnot(2, 3);
    check_all_pure(&ghz, &ParamMap::new());

    check_all_pure(&algorithms::qft_circuit(3), &ParamMap::new());
}

#[test]
fn qaoa_circuit_agrees_everywhere() {
    let qaoa = QaoaMaxCut::new(Graph::cycle(4), 1);
    check_all_pure(&qaoa.circuit(), &qaoa.default_params());
}

#[test]
fn vqe_circuit_agrees_everywhere() {
    let vqe = VqeIsing::new(2, 2, 1);
    check_all_pure(&vqe.circuit(), &vqe.default_params());
}

#[test]
fn random_circuit_agrees_everywhere() {
    let rcs = RandomCircuit::new(2, 2, 4, 9);
    check_all_pure(&rcs.circuit(), &ParamMap::new());
}

#[test]
fn hidden_shift_agrees_everywhere() {
    check_all_pure(
        &algorithms::hidden_shift_circuit(2, 0b1001),
        &ParamMap::new(),
    );
}

#[test]
fn grover_agrees_everywhere() {
    check_all_pure(&algorithms::grover_circuit(3, &[5]), &ParamMap::new());
}

#[test]
fn noisy_qaoa_density_matrix_agrees() {
    // Exact density-matrix reconstruction enumerates every noise-branch
    // assignment, so keep the event count small here; the all-gates-noisy
    // benchmark setting is validated statistically below.
    let qaoa = QaoaMaxCut::new(Graph::cycle(3), 1);
    let mut noisy = qaoa.circuit();
    noisy.depolarize(0, 0.005).depolarize(2, 0.005);
    check_kc_noisy(&noisy, &qaoa.default_params());
}

#[test]
fn noisy_vqe_density_matrix_agrees() {
    let vqe = VqeIsing::new(2, 1, 1);
    let mut noisy = vqe.circuit();
    noisy.depolarize(0, 0.005).phase_damp(1, 0.1);
    check_kc_noisy(&noisy, &vqe.default_params());
}

#[test]
fn fully_noisy_qaoa_gibbs_matches_density_matrix_diagonal() {
    // The paper's benchmark noise model (depolarizing after every gate):
    // too many noise RVs for exact enumeration, so compare the Gibbs
    // sampling distribution against the density-matrix diagonal.
    use qkc::knowledge::GibbsOptions;
    let qaoa = QaoaMaxCut::new(Graph::cycle(3), 1);
    let noisy = qaoa
        .circuit()
        .with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
    let params = qaoa.default_params();
    let want = DensityMatrixSimulator::new()
        .probabilities(&noisy, &params)
        .expect("density");
    let sim = KcSimulator::compile(&noisy, &Default::default());
    let bound = sim.bind(&params).expect("bind");
    let mut sampler = bound.sampler(&GibbsOptions {
        warmup: 800,
        seed: 19,
        ..Default::default()
    });
    let shots = 30_000;
    let mut counts = [0usize; 8];
    for x in sampler.sample_outputs(shots, 2) {
        counts[x] += 1;
    }
    for x in 0..8 {
        let freq = counts[x] as f64 / shots as f64;
        assert!(
            (freq - want[x]).abs() < 0.02,
            "P({x}): gibbs {freq} vs exact {}",
            want[x]
        );
    }
}

#[test]
fn mixed_noise_models_density_matrix_agrees() {
    let mut c = Circuit::new(3);
    c.h(0)
        .amplitude_damp(0, 0.2)
        .cnot(0, 1)
        .phase_damp(1, 0.36)
        .zz(1, 2, 0.7)
        .bit_flip(2, 0.1)
        .measure(0);
    check_kc_noisy(&c, &ParamMap::new());
}

#[test]
fn trajectory_averages_agree_with_kc_probabilities() {
    use rand::SeedableRng;
    let mut c = Circuit::new(2);
    c.h(0).depolarize(0, 0.2).cnot(0, 1).amplitude_damp(1, 0.3);
    let params = ParamMap::new();
    let kc = KcSimulator::compile(&c, &Default::default());
    let want = kc.bind(&params).expect("bind").output_probabilities();

    let sim = StateVectorSimulator::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let shots = 30_000;
    let mut acc = [0.0; 4];
    for _ in 0..shots {
        let t = sim
            .run_trajectory(&c, &params, &mut rng)
            .expect("trajectory");
        for (i, p) in t.state.probabilities().iter().enumerate() {
            acc[i] += p / shots as f64;
        }
    }
    for i in 0..4 {
        assert!(
            (acc[i] - want[i]).abs() < 0.01,
            "P({i}): trajectories {} vs kc {}",
            acc[i],
            want[i]
        );
    }
}
