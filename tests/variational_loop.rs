//! Variational-loop integration: compile once, re-bind parameters many
//! times — the paper's central use case.

use qkc::kc::{KcOptions, KcSimulator};
use qkc::knowledge::GibbsOptions;
use qkc::optim::NelderMead;
use qkc::statevector::StateVectorSimulator;
use qkc::workloads::{Graph, QaoaMaxCut};
use std::cell::RefCell;

#[test]
fn rebinding_equals_fresh_compilation() {
    let qaoa = QaoaMaxCut::new(Graph::random_regular(6, 3, 2), 1);
    let circuit = qaoa.circuit();
    let compiled_once = KcSimulator::compile(&circuit, &KcOptions::default());
    for (g, b) in [(0.3, 0.2), (0.9, 0.5), (1.4, 1.1)] {
        let params = qaoa.params(&[g], &[b]);
        // Fresh compile at these parameters...
        let fresh = KcSimulator::compile(&circuit, &KcOptions::default());
        let fresh_bound = fresh.bind(&params).expect("bind");
        // ...must agree with re-binding the shared compilation.
        let reused = compiled_once.bind(&params).expect("bind");
        for x in (0..64).step_by(7) {
            assert!(
                reused
                    .amplitude(x, &[])
                    .approx_eq(fresh_bound.amplitude(x, &[]), 1e-10),
                "amp {x} at ({g},{b})"
            );
        }
    }
}

#[test]
fn qaoa_gibbs_objective_tracks_exact_objective() {
    let qaoa = QaoaMaxCut::new(Graph::cycle(6), 1);
    let sim = KcSimulator::compile(&qaoa.circuit(), &KcOptions::default());
    let sv = StateVectorSimulator::new();
    for (g, b) in [(0.6, 0.4), (1.1, 0.25)] {
        let params = qaoa.params(&[g], &[b]);
        let exact = qaoa.exact_expected_cut(&sv.probabilities(&qaoa.circuit(), &params).unwrap());
        let bound = sim.bind(&params).expect("bind");
        let mut sampler = bound.sampler(&GibbsOptions {
            warmup: 400,
            seed: 17,
            ..Default::default()
        });
        let samples = sampler.sample_outputs(8000, 2);
        let estimated = -qaoa.objective_from_samples(&samples);
        assert!(
            (estimated - exact).abs() < 0.12,
            "at ({g},{b}): sampled {estimated} vs exact {exact}"
        );
    }
}

#[test]
fn full_nelder_mead_loop_improves_the_cut() {
    let graph = Graph::random_regular(6, 3, 11);
    let qaoa = QaoaMaxCut::new(graph.clone(), 1);
    let sim = KcSimulator::compile(&qaoa.circuit(), &KcOptions::default());
    let seed = RefCell::new(100u64);
    let objective = |angles: &[f64]| {
        *seed.borrow_mut() += 1;
        let params = qaoa.params(&angles[..1], &angles[1..]);
        let bound = sim.bind(&params).expect("bind");
        let mut sampler = bound.sampler(&GibbsOptions {
            warmup: 200,
            seed: *seed.borrow(),
            ..Default::default()
        });
        qaoa.objective_from_samples(&sampler.sample_outputs(600, 2))
    };
    let start = [0.2, 0.15];
    let initial = objective(&start);
    let result = NelderMead::new()
        .with_max_iterations(25)
        .with_initial_step(0.4)
        .minimize(objective, &start);
    // Sampled objectives are noisy; require clear improvement.
    assert!(
        result.value < initial - 0.1,
        "optimization should improve the sampled cut: {initial} -> {}",
        result.value
    );
    // And the final expected cut must beat uniform random guessing.
    let random_cut = graph.num_edges() as f64 / 2.0;
    assert!(
        -result.value > random_cut,
        "final cut {} should beat random {random_cut}",
        -result.value
    );
}

#[test]
fn compile_once_is_reused_across_many_bindings() {
    // Smoke-test the performance contract: binding must not recompile.
    let qaoa = QaoaMaxCut::new(Graph::random_regular(10, 3, 5), 1);
    let sim = KcSimulator::compile(&qaoa.circuit(), &KcOptions::default());
    let compile_time = sim.metrics().compile_seconds;
    let start = std::time::Instant::now();
    let mut acc = 0.0;
    for i in 0..50 {
        let params = qaoa.params(&[0.01 * i as f64], &[0.02 * i as f64]);
        let bound = sim.bind(&params).expect("bind");
        acc += bound.amplitude(0, &[]).norm_sqr();
    }
    let rebind_time = start.elapsed().as_secs_f64() / 50.0;
    assert!(acc.is_finite());
    assert!(
        rebind_time < compile_time.max(0.005) * 10.0,
        "per-binding cost {rebind_time}s should be far below compile {compile_time}s"
    );
}
