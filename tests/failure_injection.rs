//! Failure-injection tests: every public entry point must reject malformed
//! input with a meaningful error (or a documented panic), never a wrong
//! answer.

use qkc::circuit::{Circuit, CircuitError, Param, ParamMap, PermutationOp};
use qkc::engine::{Engine, EngineError, GradientSpec, SweepSpec};
use qkc::kc::KcSimulator;
use qkc::statevector::StateVectorSimulator;
use qkc::tensornet::TensorNetwork;

#[test]
fn unbound_symbols_error_at_every_level() {
    let mut c = Circuit::new(2);
    c.rx(0, Param::symbol("theta")).cnot(0, 1);
    let empty = ParamMap::new();

    // Gate level.
    let err = c.unitary(&empty).unwrap_err();
    assert!(matches!(err, CircuitError::Unbound(_)));
    assert!(err.to_string().contains("theta"));

    // State-vector level.
    assert!(StateVectorSimulator::new().run_pure(&c, &empty).is_err());

    // Tensor-network level.
    assert!(TensorNetwork::from_circuit(&c, &empty).is_err());

    // Knowledge-compilation level: compilation succeeds (structure is
    // parameter-independent — the paper's central point), binding fails.
    let sim = KcSimulator::compile(&c, &Default::default());
    let err = sim.bind(&empty).unwrap_err();
    assert_eq!(err.name(), "theta");

    // Partial bindings fail too.
    let partial = ParamMap::from_pairs([("eta", 1.0)]);
    assert!(sim.bind(&partial).is_err());
}

#[test]
fn pure_state_apis_reject_noisy_circuits() {
    let mut c = Circuit::new(1);
    c.h(0).depolarize(0, 0.1);
    let params = ParamMap::new();
    assert!(matches!(c.unitary(&params), Err(CircuitError::NotUnitary)));
    assert!(StateVectorSimulator::new().run_pure(&c, &params).is_err());
    assert!(TensorNetwork::from_circuit(&c, &params).is_err());
}

#[test]
fn malformed_oracles_are_rejected() {
    // Non-bijective table.
    assert!(PermutationOp::new("dup", vec![0, 0]).is_err());
    // Non-power-of-two.
    assert!(PermutationOp::new("odd", vec![0, 1, 2]).is_err());
    // Out-of-range output.
    assert!(PermutationOp::new("oob", vec![0, 9]).is_err());
    // Error messages are self-describing.
    let msg = PermutationOp::new("dup", vec![0, 0])
        .unwrap_err()
        .to_string();
    assert!(msg.contains("bijection"));
}

#[test]
#[should_panic(expected = "outside [0, 1]")]
fn out_of_range_noise_probability_panics_at_use() {
    let mut c = Circuit::new(1);
    c.bit_flip(0, 1.5);
    // Validation happens when Kraus operators are materialized.
    let _ = KcSimulator::compile(&c, &Default::default());
}

#[test]
#[should_panic(expected = "out of range")]
fn circuit_rejects_out_of_range_qubits() {
    Circuit::new(2).cnot(0, 2);
}

#[test]
#[should_panic(expected = "repeats qubit")]
fn circuit_rejects_duplicate_operands() {
    Circuit::new(3).ccx(1, 1, 2);
}

#[test]
#[should_panic(expected = "arity mismatch")]
fn amplitude_query_arity_is_checked() {
    let mut c = Circuit::new(2);
    c.h(0).depolarize(0, 0.05);
    let sim = KcSimulator::compile(&c, &Default::default());
    let bound = sim.bind(&ParamMap::new()).unwrap();
    // One noise RV exists; passing none must panic, not mis-answer.
    let _ = bound.amplitude(0, &[]);
}

#[test]
#[should_panic(expected = "noise-free")]
fn wavefunction_rejects_noisy_circuits() {
    let mut c = Circuit::new(1);
    c.h(0).phase_damp(0, 0.3);
    let sim = KcSimulator::compile(&c, &Default::default());
    let _ = sim.bind(&ParamMap::new()).unwrap().wavefunction();
}

#[test]
fn probability_queries_survive_extreme_noise() {
    // γ = 1 phase damping and p = 1 bit flip are legal edge strengths:
    // the pipeline must stay exact, not merely not-crash.
    let mut c = Circuit::new(1);
    c.h(0).phase_damp(0, 1.0).bit_flip(0, 1.0);
    let sim = KcSimulator::compile(&c, &Default::default());
    let probs = sim.bind(&ParamMap::new()).unwrap().output_probabilities();
    assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    assert!((probs[0] - 0.5).abs() < 1e-10);
}

#[test]
#[should_panic(expected = "at least one qubit")]
fn zero_qubit_circuits_are_rejected_at_construction() {
    // A zero-qubit circuit has no output space to measure: the IR rejects
    // it before any engine entry point can be asked to simulate one.
    let _ = Circuit::new(0);
}

#[test]
fn engine_gradient_handles_empty_and_unknown_wrt_without_panicking() {
    let engine = Engine::new();
    let mut c = Circuit::new(2);
    c.rx(0, Param::symbol("t")).cnot(0, 1);
    let params = ParamMap::from_pairs([("t", 0.3)]);
    let obs = |bits: usize| bits as f64;

    // Empty wrt: a legal degenerate query — the value still computes, the
    // gradient is simply empty.
    let empty = engine.gradient(&c, &params, &obs, Some(&[])).unwrap();
    assert!(empty.gradient.is_empty());
    assert!((empty.value - (0.3f64 / 2.0).sin().powi(2) * 3.0).abs() < 1e-9);

    // A symbol the circuit never mentions: its component is exactly 0
    // (the objective does not depend on it), not an error and not junk.
    let unknown = engine
        .gradient(&c, &params, &obs, Some(&["nope".to_string()]))
        .unwrap();
    assert_eq!(unknown.gradient, vec![0.0]);

    // An unbound circuit symbol is a *typed* error at the engine level.
    let err = engine
        .gradient(&c, &ParamMap::new(), &obs, None)
        .unwrap_err();
    assert!(
        matches!(err, EngineError::Circuit(_)),
        "expected a typed circuit error, got {err:?}"
    );
    assert!(err.to_string().contains("`t` has no bound value"), "{err}");
}

#[test]
fn engine_sweeps_over_empty_point_lists_are_empty_not_errors() {
    let engine = Engine::new();
    let mut c = Circuit::new(2);
    c.rx(0, Param::symbol("t")).cnot(0, 1);
    let obs = |bits: usize| bits as f64;

    let points = engine
        .sweep(&c, &[], &SweepSpec::expectation(&obs))
        .unwrap();
    assert!(points.is_empty());

    let report = engine
        .sweep_report(&c, &[], &SweepSpec::expectation(&obs))
        .unwrap();
    assert!(report.points.is_empty() && report.failures.is_empty());
    assert!(report.is_complete());

    let gradients = engine
        .gradient_sweep(&c, &[], &GradientSpec::new(&obs))
        .unwrap();
    assert!(gradients.is_empty());

    // And nothing was compiled for nothing.
    assert_eq!(engine.cache().misses(), 0);
}

#[test]
fn zero_strength_noise_equals_noise_free() {
    let mut noisy = Circuit::new(2);
    noisy
        .h(0)
        .depolarize(0, 0.0)
        .cnot(0, 1)
        .amplitude_damp(1, 0.0);
    let mut pure = Circuit::new(2);
    pure.h(0).cnot(0, 1);
    let params = ParamMap::new();
    let sim = KcSimulator::compile(&noisy, &Default::default());
    let got = sim.bind(&params).unwrap().output_probabilities();
    let want = StateVectorSimulator::new()
        .probabilities(&pure, &params)
        .unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-10);
    }
}
