//! Full-stack regression tests for the flat-tape port: every query the
//! stack answers on the compiled tape (with delta evaluation and
//! Gray-ordered basis sweeps) must stay **bit-for-bit** equal to the
//! enum-walk reference path — on random pure and noisy circuits, through
//! Gibbs sampling, and through a complete `SweepExecutor` run.

use proptest::prelude::*;
use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::engine::{Engine, EngineOptions, SweepSpec};
use qkc::kc::KcSimulator;
use qkc::knowledge::GibbsOptions;
use qkc::math::Complex;

/// A random parameterized circuit instruction; rotation angles reference
/// one of two symbols so every circuit stays re-bindable.
#[derive(Debug, Clone)]
enum Instr {
    H(usize),
    T(usize),
    RxA(usize),
    RyB(usize),
    RzA(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    ZzB(usize, usize),
}

fn arb_instr(n: usize) -> impl Strategy<Value = Instr> {
    let q = 0..n;
    let q2 = 0..n;
    (0usize..8, q, q2).prop_map(move |(kind, a, b)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Instr::H(a),
            1 => Instr::T(a),
            2 => Instr::RxA(a),
            3 => Instr::RyB(a),
            4 => Instr::RzA(a),
            5 => Instr::Cnot(a, b),
            6 => Instr::Cz(a, b),
            _ => Instr::ZzB(a, b),
        }
    })
}

fn build(n: usize, instrs: &[Instr]) -> Circuit {
    let mut c = Circuit::new(n);
    for i in instrs {
        match *i {
            Instr::H(a) => c.h(a),
            Instr::T(a) => c.t(a),
            Instr::RxA(a) => c.rx(a, Param::symbol("a")),
            Instr::RyB(a) => c.ry(a, Param::symbol("b")),
            Instr::RzA(a) => c.rz(a, Param::symbol("a")),
            Instr::Cnot(a, b) => c.cnot(a, b),
            Instr::Cz(a, b) => c.cz(a, b),
            Instr::ZzB(a, b) => c.zz(a, b, Param::symbol("b")),
        };
    }
    c
}

fn params(a: f64, b: f64) -> ParamMap {
    ParamMap::from_pairs([("a", a), ("b", b)])
}

fn bits_eq(x: Complex, y: Complex) -> bool {
    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
}

/// The enum-walk wavefunction: one arena walk per basis state, via the
/// reference amplitude path (`amplitude_assignment_enum_walk`).
fn enum_walk_wavefunction(sim: &KcSimulator, p: &ParamMap) -> Vec<Complex> {
    let bound = sim.bind(p).unwrap();
    let n = sim.num_outputs();
    let mut values = vec![0usize; sim.query().len()];
    (0..1usize << n)
        .map(|x| {
            for (i, v) in values[..n].iter_mut().enumerate() {
                *v = (x >> (n - 1 - i)) & 1;
            }
            bound.amplitude_assignment_enum_walk(&values)
        })
        .collect()
}

/// The enum-walk output distribution: random events enumerated in the
/// stack's odometer order, so per-`x` accumulation order matches
/// `output_probabilities` exactly.
fn enum_walk_probabilities(sim: &KcSimulator, p: &ParamMap) -> Vec<f64> {
    let bound = sim.bind(p).unwrap();
    let n = sim.num_outputs();
    let rv_domains: Vec<usize> = sim.query()[n..].iter().map(|s| s.domain).collect();
    let mut probs = vec![0.0; 1usize << n];
    let mut values = vec![0usize; sim.query().len()];
    let mut rvs = vec![0usize; rv_domains.len()];
    loop {
        values[n..].copy_from_slice(&rvs);
        for (x, p) in probs.iter_mut().enumerate() {
            for (i, v) in values[..n].iter_mut().enumerate() {
                *v = (x >> (n - 1 - i)) & 1;
            }
            *p += bound.amplitude_assignment_enum_walk(&values).norm_sqr();
        }
        let mut i = 0;
        loop {
            if i == rv_domains.len() {
                return probs;
            }
            rvs[i] += 1;
            if rvs[i] < rv_domains[i] {
                break;
            }
            rvs[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tape-backed wavefunctions (delta kernel, Gray-ordered sweep) equal
    /// the enum-walk reconstruction bit for bit on random pure circuits.
    #[test]
    fn wavefunction_matches_enum_walk(
        instrs in proptest::collection::vec(arb_instr(3), 1..12),
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
    ) {
        let c = build(3, &instrs);
        let sim = KcSimulator::compile(&c, &Default::default());
        let p = params(a, b);
        let tape_wf = sim.bind(&p).unwrap().wavefunction();
        let enum_wf = enum_walk_wavefunction(&sim, &p);
        for (x, (&got, &want)) in tape_wf.iter().zip(&enum_wf).enumerate() {
            prop_assert!(bits_eq(got, want), "amp {x}: {got} vs {want}");
        }
    }

    /// Tape-backed noisy output distributions equal the enum-walk
    /// reconstruction bit for bit (random-event enumeration included).
    #[test]
    fn noisy_probabilities_match_enum_walk(
        instrs in proptest::collection::vec(arb_instr(2), 1..8),
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
        noise_q in 0usize..2,
    ) {
        let mut c = build(2, &instrs);
        c.depolarize(noise_q, 0.05);
        let sim = KcSimulator::compile(&c, &Default::default());
        let p = params(a, b);
        let tape_probs = sim.bind(&p).unwrap().output_probabilities();
        let enum_probs = enum_walk_probabilities(&sim, &p);
        for (x, (&got, &want)) in tape_probs.iter().zip(&enum_probs).enumerate() {
            prop_assert!(
                got.to_bits() == want.to_bits(),
                "P({x}): {got} vs {want}"
            );
        }
    }

    /// Gibbs chains on the tape kernel (delta differentials, free held
    /// moves, cached model-sampling magnitudes) produce the identical
    /// sample stream to the enum-walk kernel through the full stack.
    #[test]
    fn gibbs_samples_match_enum_walk(
        instrs in proptest::collection::vec(arb_instr(2), 1..8),
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
        seed in 0u64..32,
    ) {
        let mut c = build(2, &instrs);
        c.depolarize(0, 0.1);
        let sim = KcSimulator::compile(&c, &Default::default());
        let p = params(a, b);
        let bound = sim.bind(&p).unwrap();
        let options = GibbsOptions { warmup: 30, thin: 1, seed, ..Default::default() };
        let tape_samples = bound.sampler(&options).sample_outputs(100, 1);
        let enum_samples = bound.sampler_enum_walk(&options).sample_outputs(100, 1);
        prop_assert_eq!(tape_samples, enum_samples);
    }
}

/// A full `SweepExecutor` run on the tape-backed KC backend is
/// byte-identical to the enum-walk reconstruction of every point — the
/// end-to-end regression for the port (and it must hold for every batch
/// width and thread count, which the engine already guarantees relative
/// to itself).
#[test]
fn sweep_executor_results_match_enum_walk_reconstruction() {
    let mut c = Circuit::new(3);
    c.h(0)
        .rx(1, Param::symbol("a"))
        .cnot(0, 1)
        .zz(1, 2, Param::symbol("b"))
        .ry(2, Param::symbol("a"));
    let points: Vec<ParamMap> = (0..24)
        .map(|i| params(0.15 + 0.11 * i as f64, 1.4 - 0.07 * i as f64))
        .collect();
    let obs = |bits: usize| (bits as f64).sqrt();
    let spec = SweepSpec::expectation(&obs).with_seed(5);

    // Enum reference: per-point expectation folded in the same order the
    // backend folds probabilities.
    let sim = KcSimulator::compile(&c, &Default::default());
    let reference: Vec<f64> = points
        .iter()
        .map(|p| {
            enum_walk_wavefunction(&sim, p)
                .iter()
                .map(|amp| amp.norm_sqr())
                .enumerate()
                .map(|(bits, pr)| pr * obs(bits))
                .sum()
        })
        .collect();

    for (threads, batch) in [(1, 1), (1, 4), (4, 16), (8, 3)] {
        let engine = Engine::with_options(
            EngineOptions::default()
                .with_threads(threads)
                .with_batch(batch),
        );
        let got = engine.sweep(&c, &points, &spec).expect("sweep");
        assert_eq!(got.len(), points.len());
        for (i, point) in got.iter().enumerate() {
            let e = point.expectation.expect("expectation requested");
            assert_eq!(
                e.to_bits(),
                reference[i].to_bits(),
                "threads={threads} batch={batch} point {i}: {e} vs {}",
                reference[i]
            );
        }
    }
}
