//! Algorithm-suite correctness *through the knowledge-compilation
//! pipeline*: the paper validates its simulator backend on this exact suite
//! (artifact appendix A.6.1).

use qkc::circuit::ParamMap;
use qkc::kc::KcSimulator;
use qkc::knowledge::GibbsOptions;
use qkc::workloads::algorithms::{
    bernstein_vazirani_circuit, deutsch_jozsa_circuit, grover_circuit, hidden_shift_circuit,
    noisy_bell_circuit, simon_circuit, teleportation_circuit, DjOracle,
};

fn kc_probabilities(circuit: &qkc::circuit::Circuit) -> Vec<f64> {
    let sim = KcSimulator::compile(circuit, &Default::default());
    sim.bind(&ParamMap::new())
        .expect("bind")
        .output_probabilities()
}

#[test]
fn deutsch_jozsa_constant_vs_balanced_via_kc() {
    let n = 3;
    let constant = kc_probabilities(&deutsch_jozsa_circuit(n, DjOracle::Constant { bit: true }));
    // Input register all-zeros with certainty (ancilla traced out).
    let p0: f64 = constant[0] + constant[1];
    assert!((p0 - 1.0).abs() < 1e-9);

    let balanced = kc_probabilities(&deutsch_jozsa_circuit(
        n,
        DjOracle::BalancedParity { mask: 0b101 },
    ));
    let p0: f64 = balanced[0] + balanced[1];
    assert!(p0 < 1e-9);
}

#[test]
fn bernstein_vazirani_recovers_secret_via_kc_sampling() {
    let n = 4;
    let secret = 0b1011;
    let sim = KcSimulator::compile(&bernstein_vazirani_circuit(n, secret), &Default::default());
    let bound = sim.bind(&ParamMap::new()).expect("bind");
    let mut sampler = bound.sampler(&GibbsOptions {
        warmup: 100,
        seed: 3,
        ..Default::default()
    });
    for outcome in sampler.sample_outputs(50, 1) {
        // Drop the ancilla bit (last qubit).
        assert_eq!(outcome >> 1, secret, "every sample reads the secret");
    }
}

#[test]
fn hidden_shift_recovers_shift_via_kc() {
    let shift = 0b0110;
    let probs = kc_probabilities(&hidden_shift_circuit(2, shift));
    assert!((probs[shift] - 1.0).abs() < 1e-9);
}

#[test]
fn simon_outputs_orthogonal_to_secret_via_kc() {
    let n = 2;
    let secret = 0b11;
    let probs = kc_probabilities(&simon_circuit(n, secret));
    for (state, &p) in probs.iter().enumerate() {
        if p > 1e-12 {
            let x = state >> n;
            assert_eq!((x & secret).count_ones() % 2, 0, "state {state:b}");
        }
    }
}

#[test]
fn grover_amplifies_marked_state_via_kc() {
    let probs = kc_probabilities(&grover_circuit(3, &[6]));
    assert!(probs[6] > 0.75, "marked-state probability {}", probs[6]);
}

#[test]
fn teleportation_density_matrix_via_kc() {
    let theta = 1.1;
    let sim = KcSimulator::compile(&teleportation_circuit(theta), &Default::default());
    let rho = sim.bind(&ParamMap::new()).expect("bind").density_matrix();
    // Bob's qubit (qubit 2) carries Ry(theta)|0>.
    let p1: f64 = (0..8).filter(|s| s & 1 == 1).map(|s| rho[(s, s)].re).sum();
    assert!((p1 - (theta / 2.0_f64).sin().powi(2)).abs() < 1e-9);
}

#[test]
fn noisy_bell_matches_paper_table_5() {
    // The running example, end to end: amplitudes of Table 5 (up to the
    // Kraus branch phase gauge).
    let sim = KcSimulator::compile(&noisy_bell_circuit(0.36), &Default::default());
    let bound = sim.bind(&ParamMap::new()).expect("bind");
    let s = std::f64::consts::FRAC_1_SQRT_2;
    assert!((bound.amplitude(0b00, &[0]).norm() - s).abs() < 1e-12);
    assert!(bound.amplitude(0b01, &[0]).norm() < 1e-12);
    assert!(bound.amplitude(0b10, &[0]).norm() < 1e-12);
    assert!((bound.amplitude(0b11, &[0]).norm() - 0.8 * s).abs() < 1e-12);
    assert!(bound.amplitude(0b00, &[1]).norm() < 1e-12);
    assert!((bound.amplitude(0b11, &[1]).norm() - 0.6 * s).abs() < 1e-12);
}
