//! Full-stack regression tests for the artifact lifecycle: the wire
//! format round-trips bit-for-bit on random pure and noisy circuits,
//! hostile payloads are rejected cleanly, and a byte-capped cache that
//! evicts, spills, and rehydrates mid-sweep produces **byte-identical**
//! results to an unbounded cache — at every thread count and batch width.

use proptest::prelude::*;
use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::engine::{BackendKind, CacheOptions, Engine, EngineOptions, SweepSpec};
use qkc::kc::{ArtifactDecodeError, KcOptions, KcSimulator};
use qkc::knowledge::{AcTape, VerifyLevel};
use std::path::PathBuf;

/// A random parameterized circuit instruction; rotation angles reference
/// one of two symbols so every circuit stays re-bindable.
#[derive(Debug, Clone)]
enum Instr {
    H(usize),
    T(usize),
    RxA(usize),
    RyB(usize),
    RzA(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    ZzB(usize, usize),
}

fn arb_instr(n: usize) -> impl Strategy<Value = Instr> {
    let q = 0..n;
    let q2 = 0..n;
    (0usize..8, q, q2).prop_map(move |(kind, a, b)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Instr::H(a),
            1 => Instr::T(a),
            2 => Instr::RxA(a),
            3 => Instr::RyB(a),
            4 => Instr::RzA(a),
            5 => Instr::Cnot(a, b),
            6 => Instr::Cz(a, b),
            _ => Instr::ZzB(a, b),
        }
    })
}

fn build(n: usize, instrs: &[Instr]) -> Circuit {
    let mut c = Circuit::new(n);
    for i in instrs {
        match *i {
            Instr::H(a) => c.h(a),
            Instr::T(a) => c.t(a),
            Instr::RxA(a) => c.rx(a, Param::symbol("a")),
            Instr::RyB(a) => c.ry(a, Param::symbol("b")),
            Instr::RzA(a) => c.rz(a, Param::symbol("a")),
            Instr::Cnot(a, b) => c.cnot(a, b),
            Instr::Cz(a, b) => c.cz(a, b),
            Instr::ZzB(a, b) => c.zz(a, b, Param::symbol("b")),
        };
    }
    c
}

fn params(a: f64, b: f64) -> ParamMap {
    ParamMap::from_pairs([("a", a), ("b", b)])
}

/// A unique scratch dir per call (std-only; removed by the caller).
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qkc-lifecycle-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Bit-exact comparison of every evaluator-visible output of two
/// simulators at a binding: amplitudes over the full query space for
/// noisy circuits, the wavefunction for pure ones.
fn assert_binds_identical(a: &KcSimulator, b: &KcSimulator, p: &ParamMap) {
    let ba = a.bind(p).unwrap();
    let bb = b.bind(p).unwrap();
    if a.num_random_events() == 0 {
        let wa = ba.wavefunction();
        let wb = bb.wavefunction();
        for (x, (u, v)) in wa.iter().zip(&wb).enumerate() {
            assert_eq!(u.re.to_bits(), v.re.to_bits(), "amp {x} re");
            assert_eq!(u.im.to_bits(), v.im.to_bits(), "amp {x} im");
        }
    } else {
        let pa = ba.output_probabilities();
        let pb = bb.output_probabilities();
        for (x, (u, v)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(u.to_bits(), v.to_bits(), "P({x})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `AcTape::to_bytes ∘ from_bytes` is the identity on compiled tapes
    /// of random pure and noisy circuits (re-encode byte-equality), and
    /// the rehydrated *simulator* binds bit-for-bit identically to the
    /// original across random parameter bindings.
    #[test]
    fn artifact_round_trip_is_bit_identical(
        instrs in proptest::collection::vec(arb_instr(3), 1..10),
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
        noisy in 0usize..2,
    ) {
        let mut c = build(3, &instrs);
        if noisy == 1 {
            c.depolarize(0, 0.05);
        }
        let options = KcOptions::default();
        let sim = KcSimulator::compile(&c, &options);

        // Tape level: decode(encode(tape)) re-encodes to the same bytes.
        let tape_bytes = sim.tape().to_bytes();
        let tape_back = AcTape::from_bytes(&tape_bytes).expect("tape decodes");
        prop_assert_eq!(tape_back.to_bytes(), tape_bytes.clone());

        // Size accounting stays exact across the wire: derived fields
        // (the batch kernels' scratch-sizing metadata is not serialized)
        // are reconstructed at decode, so the resident footprint the
        // GreedyDual-Size cache charges is identical on both sides.
        prop_assert_eq!(tape_back.size_bytes(), sim.tape().size_bytes());
        prop_assert_eq!(sim.metrics().ac_size_bytes, sim.tape().size_bytes());

        // Artifact level: the rehydrated simulator is indistinguishable.
        let bytes = sim.to_bytes(&c, &options);
        let back = KcSimulator::from_bytes(&c, &options, &bytes).expect("artifact decodes");
        assert_binds_identical(&sim, &back, &params(a, b));
        assert_binds_identical(&sim, &back, &params(b * 0.7, a + 0.3));
        prop_assert_eq!(back.to_bytes(&c, &options), bytes);

        // The rehydrated artifact certifies: the static verifier finds
        // no error-severity issue in what just crossed the wire.
        let report = back
            .verify_with_params(&params(a, b), VerifyLevel::Full)
            .expect("params bind");
        prop_assert!(
            report.is_clean(),
            "rehydrated artifact failed static verification:\n{}",
            report.render()
        );
    }

    /// Corrupted, truncated, and version-skewed payloads are rejected
    /// with an error — never a panic, never a silently wrong artifact —
    /// on random circuits.
    #[test]
    fn hostile_payloads_are_rejected(
        instrs in proptest::collection::vec(arb_instr(2), 1..8),
        flip in proptest::bits::u8::ANY,
        cut in 0.0..1.0f64,
    ) {
        let c = build(2, &instrs);
        let options = KcOptions::default();
        let sim = KcSimulator::compile(&c, &options);
        let bytes = sim.to_bytes(&c, &options);

        let cut_at = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(KcSimulator::from_bytes(&c, &options, &bytes[..cut_at]).is_err());

        let mut corrupt = bytes.clone();
        let at = cut_at.min(bytes.len() - 1);
        corrupt[at] ^= flip | 1; // always a real flip
        prop_assert!(KcSimulator::from_bytes(&c, &options, &corrupt).is_err());

        let mut skewed = bytes.clone();
        skewed[4] = skewed[4].wrapping_add(1);
        prop_assert!(matches!(
            KcSimulator::from_bytes(&c, &options, &skewed).err(),
            Some(ArtifactDecodeError::UnsupportedVersion(_))
                | Some(ArtifactDecodeError::ChecksumMismatch)
        ));
    }
}

/// The acceptance contract of the bounded cache: a sweep that forces
/// eviction + spill + rehydration mid-flight is **byte-identical** to the
/// unbounded sweep, for every thread count × batch width, and the byte
/// budget holds after completion.
#[test]
fn capped_spilling_sweeps_are_byte_identical_to_unbounded() {
    // Three distinct structures swept in interleaved rounds, so a cache
    // sized below their combined footprint keeps evicting mid-run.
    let mut structures: Vec<Circuit> = Vec::new();
    for extra in 0..3usize {
        let mut c = Circuit::new(3);
        c.h(0).rx(1, Param::symbol("a")).cnot(0, 1);
        for q in 0..extra {
            c.t(q).h(q);
        }
        c.zz(1, 2, Param::symbol("b")).depolarize(0, 0.02);
        structures.push(c);
    }
    let bindings: Vec<ParamMap> = (0..12)
        .map(|i| params(0.2 + 0.13 * i as f64, 1.1 - 0.09 * i as f64))
        .collect();
    let obs = |bits: usize| bits as f64 - 1.5;
    let spec = SweepSpec::expectation(&obs).with_seed(42).with_shots(32);

    // Reference: unbounded cache (KC backend forced, so the compiled
    // artifacts — not a dense fallback — are what both engines exercise).
    let unbounded = Engine::with_options(
        EngineOptions::default()
            .with_threads(2)
            .with_backend(BackendKind::KnowledgeCompilation),
    );
    let reference: Vec<_> = structures
        .iter()
        .map(|c| unbounded.sweep(c, &bindings, &spec).expect("sweep"))
        .collect();
    assert_eq!(unbounded.cache().stats().evictions, 0);

    // Total footprint → a cap below it forces eviction traffic.
    let total = unbounded.cache().resident_bytes();
    assert!(total > 0);
    let dir = scratch_dir("sweep");
    for threads in [1usize, 2, 4] {
        for batch in [1usize, 3, 16] {
            let capped = Engine::with_options(
                EngineOptions::default()
                    .with_threads(threads)
                    .with_batch(batch)
                    .with_backend(BackendKind::KnowledgeCompilation)
                    .with_cache(
                        CacheOptions::default()
                            .with_max_resident_bytes(total / 3)
                            .with_spill_dir(&dir),
                    ),
            );
            // Interleave structures twice so evicted artifacts are
            // re-requested (spill hits, not just first compiles).
            for round in 0..2 {
                for (s, c) in structures.iter().enumerate() {
                    let got = capped.sweep(c, &bindings, &spec).expect("capped sweep");
                    assert_eq!(
                        got, reference[s],
                        "threads={threads} batch={batch} round={round} structure={s}: \
                         capped cache changed sweep results"
                    );
                }
            }
            let stats = capped.cache().stats();
            assert!(
                stats.resident_bytes <= total / 3,
                "budget violated after completion: {} > {}",
                stats.resident_bytes,
                total / 3
            );
            assert!(
                stats.evictions > 0,
                "cap below footprint must evict: {stats:?}"
            );
            assert!(
                stats.spill_hits > 0,
                "re-requested evicted artifacts must rehydrate from disk: {stats:?}"
            );
            assert_eq!(
                stats.misses, 3,
                "with a spill tier every structure compiles exactly once: {stats:?}"
            );
            capped.cache().clear();
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Eviction without a spill dir recompiles — and still produces the
/// identical bytes (the determinism contract does not depend on spill).
#[test]
fn spill_less_eviction_recompiles_identically() {
    let mut c = Circuit::new(3);
    c.h(0)
        .rx(0, Param::symbol("a"))
        .cnot(0, 1)
        .zz(1, 2, Param::symbol("b"));
    let bindings: Vec<ParamMap> = (0..8)
        .map(|i| params(0.1 * i as f64, 0.4 + 0.05 * i as f64))
        .collect();
    let obs = |bits: usize| bits as f64;
    let spec = SweepSpec::expectation(&obs).with_seed(7);

    let unbounded = Engine::with_options(
        EngineOptions::default().with_backend(BackendKind::KnowledgeCompilation),
    );
    let want = unbounded.sweep(&c, &bindings, &spec).expect("sweep");

    // A 1-byte cap without spill: every sweep's compile is evicted right
    // after it lands, so the second sweep recompiles.
    let capped = Engine::with_options(
        EngineOptions::default()
            .with_threads(2)
            .with_backend(BackendKind::KnowledgeCompilation)
            .with_cache(CacheOptions::default().with_max_resident_bytes(1)),
    );
    let got1 = capped.sweep(&c, &bindings, &spec).expect("sweep 1");
    let got2 = capped.sweep(&c, &bindings, &spec).expect("sweep 2");
    assert_eq!(got1, want);
    assert_eq!(got2, want);
    let stats = capped.cache().stats();
    assert!(stats.evictions >= 2);
    assert!(stats.misses >= 2, "no spill dir → recompiles: {stats:?}");
    assert_eq!(stats.spill_hits, 0);
    assert!(stats.resident_bytes <= 1);
}

/// A warm spill directory carries compiled artifacts across engine
/// instances (the restart-survival half of the lifecycle), bit-for-bit.
#[test]
fn spill_dir_warm_start_reuses_artifacts_across_engines() {
    let mut c = Circuit::new(2);
    c.h(0).rx(1, Param::symbol("a")).cnot(0, 1);
    let bindings: Vec<ParamMap> = (0..6).map(|i| params(0.3 * i as f64, 0.0)).collect();
    let obs = |bits: usize| if bits == 0b11 { 1.0 } else { 0.0 };
    let spec = SweepSpec::expectation(&obs).with_seed(5);

    let dir = scratch_dir("warm");
    let first = Engine::with_options(
        EngineOptions::default()
            .with_backend(BackendKind::KnowledgeCompilation)
            .with_cache(CacheOptions::default().with_spill_dir(&dir)),
    );
    let want = first.sweep(&c, &bindings, &spec).expect("sweep");
    assert_eq!(first.cache().stats().misses, 1);
    assert!(first.cache().stats().spilled_bytes > 0);

    // A second engine (≈ restarted process) over the same dir: no
    // compile, one spill hit, identical bytes.
    let second = Engine::with_options(
        EngineOptions::default()
            .with_backend(BackendKind::KnowledgeCompilation)
            .with_cache(CacheOptions::default().with_spill_dir(&dir)),
    );
    let got = second.sweep(&c, &bindings, &spec).expect("warm sweep");
    assert_eq!(got, want);
    let stats = second.cache().stats();
    assert_eq!(stats.misses, 0, "warm start must not compile: {stats:?}");
    assert_eq!(stats.spill_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
