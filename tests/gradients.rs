//! End-to-end tests of the engine's gradient queries and gradient-based
//! variational loops: one-pass analytic gradients cross-checked against
//! the parameter-shift rule and finite-difference references on random
//! pure and noisy circuits, bit-for-bit determinism across thread counts
//! and batch widths, compile-once economics across whole optimizer runs,
//! and the QAOA-ring / VQE-Ising optimizer comparison at equal
//! evaluation budget.

use proptest::prelude::*;
use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::engine::{
    ArtifactCache, Backend, BackendKind, Engine, EngineOptions, GradientMethod, GradientOptimizer,
    GradientSpec, KcBackend, VariationalConfig, VariationalGradientConfig,
};
use qkc::kc::KcOptions;
use qkc::optim::{Adam, NelderMead, Spsa};
use qkc::workloads::{Graph, QaoaMaxCut, VqeIsing};
use std::sync::Arc;

/// A random parameterized instruction over two shared symbols, so symbols
/// repeat across gates and the general (order > 1) shift rule is
/// exercised, including the half-frequency controlled-rotation rule.
#[derive(Debug, Clone)]
enum Instr {
    H(usize),
    T(usize),
    RxA(usize),
    RyB(usize),
    RzA(usize),
    PhaseB(usize),
    Cnot(usize, usize),
    ZzB(usize, usize),
    CrzA(usize, usize),
}

fn arb_instr(n: usize) -> impl Strategy<Value = Instr> {
    let q = 0..n;
    let q2 = 0..n;
    (0usize..9, q, q2).prop_map(move |(kind, a, b)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Instr::H(a),
            1 => Instr::T(a),
            2 => Instr::RxA(a),
            3 => Instr::RyB(a),
            4 => Instr::RzA(a),
            5 => Instr::PhaseB(a),
            6 => Instr::Cnot(a, b),
            7 => Instr::ZzB(a, b),
            _ => Instr::CrzA(a, b),
        }
    })
}

fn build(n: usize, instrs: &[Instr], noisy: bool) -> Circuit {
    let mut c = Circuit::new(n);
    for i in instrs {
        match *i {
            Instr::H(a) => c.h(a),
            Instr::T(a) => c.t(a),
            Instr::RxA(a) => c.rx(a, Param::symbol("a")),
            Instr::RyB(a) => c.ry(a, Param::symbol("b")),
            Instr::RzA(a) => c.rz(a, Param::symbol("a")),
            Instr::PhaseB(a) => c.phase(a, Param::symbol("b")),
            Instr::Cnot(a, b) => c.cnot(a, b),
            Instr::ZzB(a, b) => c.zz(a, b, Param::symbol("b")),
            Instr::CrzA(a, b) => c.crz(a, b, Param::symbol("a")),
        };
    }
    if noisy {
        c.depolarize(0, 0.04).bit_flip(n - 1, 0.03);
    }
    c
}

/// Central-difference reference gradient from exact engine expectations.
fn fd_reference(
    engine: &Engine,
    circuit: &Circuit,
    params: &ParamMap,
    obs: &(dyn Fn(usize) -> f64 + Sync),
    wrt: &[String],
) -> Vec<f64> {
    let h = 1e-5;
    wrt.iter()
        .map(|s| match params.get(s) {
            None => 0.0,
            Some(base) => {
                let mut plus = params.clone();
                plus.bind(s, base + h);
                let mut minus = params.clone();
                minus.bind(s, base - h);
                let ep = engine.expectation(circuit, &plus, obs, 0, 1).unwrap();
                let em = engine.expectation(circuit, &minus, obs, 0, 1).unwrap();
                (ep - em) / (2.0 * h)
            }
        })
        .collect()
}

fn kc_engine() -> Engine {
    Engine::with_options(EngineOptions::default().with_backend(BackendKind::KnowledgeCompilation))
}

/// A KC backend pinned to the parameter-shift rule — the cross-check
/// reference for the primary analytic path.
fn shift_backend() -> KcBackend {
    KcBackend::new(Arc::new(ArtifactCache::new()), KcOptions::default()).with_force_shift(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Analytic gradients agree with the parameter-shift rule (to 1e-9)
    /// and with central finite differences on random pure circuits —
    /// including shared symbols (rule order > 1) and controlled rotations
    /// (half-frequency rule) — in a single tape evaluation.
    #[test]
    fn analytic_matches_parameter_shift_and_finite_differences_pure(
        instrs in proptest::collection::vec(arb_instr(3), 1..12),
        a in -2.0..2.0f64,
        b in -2.0..2.0f64,
    ) {
        let circuit = build(3, &instrs, false);
        let params = ParamMap::from_pairs([("a", a), ("b", b)]);
        let obs = |bits: usize| bits as f64 - 1.5;
        let engine = kc_engine();
        let wrt: Vec<String> = circuit.symbols().into_iter().collect();
        let r = engine.gradient(&circuit, &params, &obs, Some(&wrt)).unwrap();
        prop_assert!(r.exact, "gate symbols are analytically exact");
        prop_assert_eq!(r.gradient.len(), wrt.len());
        if !wrt.is_empty() {
            prop_assert_eq!(r.method, GradientMethod::Analytic);
            prop_assert_eq!(r.evaluations, 1, "one pass for every parameter");
            // Cross-check against the parameter-shift rule: two exact
            // methods for the same derivative agree to rounding error.
            let s = shift_backend()
                .expectation_gradient(&circuit, &params, &obs, &wrt)
                .unwrap();
            prop_assert_eq!(s.method, GradientMethod::ParameterShift);
            prop_assert!((r.value - s.value).abs() < 1e-12);
            for (i, (an, ps)) in r.gradient.iter().zip(&s.gradient).enumerate() {
                prop_assert!(
                    (an - ps).abs() < 1e-9,
                    "symbol {} ({}): analytic {} vs shift {}", i, wrt[i], an, ps
                );
            }
        }
        let fd = fd_reference(&engine, &circuit, &params, &obs, &wrt);
        for (i, (an, fd)) in r.gradient.iter().zip(&fd).enumerate() {
            prop_assert!(
                (an - fd).abs() < 1e-4,
                "symbol {} ({}): analytic {} vs fd {}", i, wrt[i], an, fd
            );
        }
        // The value lane agrees with a plain expectation query.
        let want = engine.expectation(&circuit, &params, &obs, 0, 1).unwrap();
        prop_assert!((r.value - want).abs() < 1e-12);
    }

    /// Same three-way agreement on random noisy circuits (fixed-probability
    /// channels; exact noisy expectations within the enumeration budget).
    #[test]
    fn analytic_matches_parameter_shift_and_finite_differences_noisy(
        instrs in proptest::collection::vec(arb_instr(3), 1..8),
        a in -2.0..2.0f64,
        b in -2.0..2.0f64,
    ) {
        let circuit = build(3, &instrs, true);
        let params = ParamMap::from_pairs([("a", a), ("b", b)]);
        let obs = |bits: usize| bits as f64;
        let engine = kc_engine();
        let wrt: Vec<String> = circuit.symbols().into_iter().collect();
        let r = engine.gradient(&circuit, &params, &obs, Some(&wrt)).unwrap();
        prop_assert!(r.exact);
        if !wrt.is_empty() {
            prop_assert_eq!(r.method, GradientMethod::Analytic);
            prop_assert_eq!(r.evaluations, 1);
            let s = shift_backend()
                .expectation_gradient(&circuit, &params, &obs, &wrt)
                .unwrap();
            for (i, (an, ps)) in r.gradient.iter().zip(&s.gradient).enumerate() {
                prop_assert!(
                    (an - ps).abs() < 1e-9,
                    "symbol {} ({}): analytic {} vs shift {}", i, wrt[i], an, ps
                );
            }
        }
        let fd = fd_reference(&engine, &circuit, &params, &obs, &wrt);
        for (i, (an, fd)) in r.gradient.iter().zip(&fd).enumerate() {
            prop_assert!(
                (an - fd).abs() < 1e-4,
                "symbol {} ({}): analytic {} vs fd {}", i, wrt[i], an, fd
            );
        }
    }

    /// Gradient sweeps are byte-identical across thread counts and sweep
    /// batch widths (gradient lanes are fixed by the shift plan, but the
    /// engine options must not leak into the numerics).
    #[test]
    fn gradient_sweeps_are_deterministic_across_threads_and_batch(
        instrs in proptest::collection::vec(arb_instr(3), 1..10),
    ) {
        let circuit = build(3, &instrs, false);
        prop_assume!(!circuit.symbols().is_empty());
        let points: Vec<ParamMap> = (0..5)
            .map(|i| ParamMap::from_pairs([("a", 0.2 + 0.3 * i as f64), ("b", 1.1 - 0.2 * i as f64)]))
            .collect();
        let obs = |bits: usize| bits as f64;
        let run = |threads: usize, batch: usize| {
            let engine = Engine::with_options(
                EngineOptions::default()
                    .with_backend(BackendKind::KnowledgeCompilation)
                    .with_threads(threads)
                    .with_batch(batch),
            );
            engine
                .gradient_sweep(&circuit, &points, &GradientSpec::new(&obs))
                .unwrap()
        };
        let base = run(1, 1);
        for (threads, batch) in [(2usize, 3usize), (4, 8), (8, 16)] {
            let got = run(threads, batch);
            prop_assert_eq!(base.len(), got.len());
            for (x, y) in base.iter().zip(&got) {
                prop_assert_eq!(x.index, y.index);
                prop_assert_eq!(x.method, GradientMethod::Analytic);
                prop_assert_eq!(x.method, y.method);
                prop_assert_eq!(x.value.to_bits(), y.value.to_bits(),
                    "threads={} batch={}", threads, batch);
                for (gx, gy) in x.gradient.iter().zip(&y.gradient) {
                    prop_assert_eq!(gx.to_bits(), gy.to_bits());
                }
            }
        }
    }
}

/// A QAOA-shaped circuit with **one** gamma shared across every ring edge
/// and one beta across every mixer — plus a controlled rotation on the
/// same gamma — agrees between the analytic path and the high-order
/// parameter-shift rule to 1e-9, in one tape evaluation instead of
/// `2·occurrences + 1`.
#[test]
fn shared_symbol_across_all_edges_matches_shift_rule() {
    let n = 5;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        c.zz(q, (q + 1) % n, Param::symbol("gamma"));
    }
    for q in 0..n {
        c.rx(q, Param::symbol("beta"));
    }
    c.crz(0, 2, Param::symbol("gamma"));
    let params = ParamMap::from_pairs([("gamma", 0.47), ("beta", 1.13)]);
    let obs = |bits: usize| bits.count_ones() as f64;
    let wrt = vec!["beta".to_string(), "gamma".to_string()];
    let engine = kc_engine();
    let r = engine.gradient(&c, &params, &obs, Some(&wrt)).unwrap();
    assert_eq!(r.method, GradientMethod::Analytic);
    assert!(r.exact);
    assert_eq!(r.evaluations, 1, "one pass regardless of symbol sharing");
    let s = shift_backend()
        .expectation_gradient(&c, &params, &obs, &wrt)
        .unwrap();
    assert_eq!(s.method, GradientMethod::ParameterShift);
    assert!(
        s.evaluations > 2 * wrt.len() + 1,
        "shared symbols inflate the shift-lane count ({})",
        s.evaluations
    );
    assert!((r.value - s.value).abs() < 1e-12);
    for (i, (an, ps)) in r.gradient.iter().zip(&s.gradient).enumerate() {
        assert!(
            (an - ps).abs() < 1e-9,
            "{}: analytic {an} vs shift {ps}",
            wrt[i]
        );
    }
}

/// One compile for a whole Adam run on the analytic gradient path: every
/// gradient query is a single tangent-carrying bind against the same
/// cached artifact.
#[test]
fn adam_run_compiles_exactly_once() {
    let qaoa = QaoaMaxCut::new(Graph::cycle(6), 1);
    let engine = kc_engine();
    let r = qaoa
        .optimize_gradient_via(
            &engine,
            &VariationalGradientConfig {
                optimizer: GradientOptimizer::Adam(Adam::new().with_max_iterations(25)),
                shots: 0,
                seed: 5,
            },
        )
        .unwrap();
    assert!(r.all_exact);
    assert!(r.optim.iterations > 0);
    assert_eq!(
        engine.cache().misses(),
        1,
        "whole Adam run compiles exactly once"
    );
    assert!(engine.cache().hits() >= r.optim.iterations as u64 - 1);
}

/// Non-compiled backends answer the same gradient API by central finite
/// differences, flagged inexact, and agree with the exact path.
#[test]
fn finite_difference_fallback_matches_exact_path() {
    let mut c = Circuit::new(2);
    c.h(0)
        .rx(0, Param::symbol("a"))
        .zz(0, 1, Param::symbol("b"));
    let params = ParamMap::from_pairs([("a", 0.7), ("b", 1.3)]);
    let obs = |bits: usize| bits as f64;
    let exact = kc_engine().gradient(&c, &params, &obs, None).unwrap();
    assert!(exact.exact);
    assert_eq!(exact.method, GradientMethod::Analytic);
    let sv_engine =
        Engine::with_options(EngineOptions::default().with_backend(BackendKind::StateVector));
    let fd = sv_engine.gradient(&c, &params, &obs, None).unwrap();
    assert!(!fd.exact, "state-vector gradients are finite differences");
    assert_eq!(fd.method, GradientMethod::FiniteDifference);
    assert_eq!(fd.evaluations, 5);
    for (a, b) in exact.gradient.iter().zip(&fd.gradient) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
}

/// Symbols that parameterize noise channels fall back to finite
/// differences within an otherwise-exact gradient.
#[test]
fn noise_symbol_components_are_finite_difference() {
    let mut c = Circuit::new(1);
    c.rx(0, Param::symbol("theta")).noise(
        qkc::circuit::NoiseChannel::BitFlip {
            p: Param::symbol("p"),
        },
        0,
    );
    let params = ParamMap::from_pairs([("theta", 0.9), ("p", 0.1)]);
    let obs = |bits: usize| bits as f64;
    let engine = kc_engine();
    let wrt = vec!["p".to_string(), "theta".to_string()];
    let r = engine.gradient(&c, &params, &obs, Some(&wrt)).unwrap();
    assert!(!r.exact, "a noise-symbol component demotes the whole flag");
    assert_eq!(
        r.method,
        GradientMethod::ParameterShift,
        "noise symbols route the query to the shift/FD fallback"
    );
    // P(1) = (1-p)·sin²(θ/2) + p·cos²(θ/2): both components have closed
    // forms to check against.
    let s2 = (0.9f64 / 2.0).sin().powi(2);
    let want_dp = 1.0 - 2.0 * s2;
    let want_dtheta = (1.0 - 2.0 * 0.1) * (0.9f64).sin() / 2.0 * 2.0 / 2.0;
    assert!((r.gradient[0] - want_dp).abs() < 1e-5, "{}", r.gradient[0]);
    assert!(
        (r.gradient[1] - want_dtheta).abs() < 1e-5,
        "{} vs {want_dtheta}",
        r.gradient[1]
    );
}

/// Regression: a noise symbol bound at a probability-domain boundary
/// (`p = 0` or `p = 1`) must yield a (one-sided) finite-difference
/// component, not a panic from probing an invalid probability.
#[test]
fn noise_symbol_gradient_at_probability_boundary() {
    let mut c = Circuit::new(1);
    c.rx(0, Param::symbol("theta")).noise(
        qkc::circuit::NoiseChannel::BitFlip {
            p: Param::symbol("p"),
        },
        0,
    );
    let obs = |bits: usize| bits as f64;
    let engine = kc_engine();
    // P(1) = (1-p)·sin²(θ/2) + p·cos²(θ/2) → dP/dp = 1 − 2·sin²(θ/2).
    let s2 = (0.9f64 / 2.0).sin().powi(2);
    for p in [0.0, 1.0] {
        let params = ParamMap::from_pairs([("theta", 0.9), ("p", p)]);
        let r = engine.gradient(&c, &params, &obs, None).unwrap();
        assert!(!r.exact);
        assert!(
            (r.gradient[0] - (1.0 - 2.0 * s2)).abs() < 1e-5,
            "dP/dp at p={p}: {}",
            r.gradient[0]
        );
    }
}

/// The acceptance comparison on the QAOA ring: SPSA and Adam converge to
/// the Nelder–Mead baseline's objective at equal engine-evaluation
/// budget, with exact (parameter-shift) gradients on the KC backend.
#[test]
fn qaoa_ring_gradient_optimizers_match_nelder_mead_at_equal_budget() {
    let qaoa = QaoaMaxCut::new(Graph::cycle(8), 1);
    let budget = 2000usize;
    let engine = Engine::new();
    let nm = qaoa
        .optimize_via(
            &engine,
            &VariationalConfig {
                optimizer: NelderMead::new().with_max_iterations(budget),
                shots: 0,
                seed: 7,
            },
        )
        .unwrap();
    assert!(nm.engine_evaluations <= budget);
    let engine = Engine::new();
    let spsa = qaoa
        .optimize_gradient_via(
            &engine,
            &VariationalGradientConfig {
                optimizer: GradientOptimizer::Spsa(Spsa::new().with_max_iterations(budget / 3)),
                shots: 0,
                seed: 7,
            },
        )
        .unwrap();
    assert!(spsa.engine_evaluations <= budget);
    let engine = Engine::new();
    // Lanes per Adam iteration: base + 2 per gate occurrence (8 ZZ + 8 Rx).
    let lanes = 1 + 2 * (8 + 8);
    let adam = qaoa
        .optimize_gradient_via(
            &engine,
            &VariationalGradientConfig {
                optimizer: GradientOptimizer::Adam(Adam::new().with_max_iterations(budget / lanes)),
                shots: 0,
                seed: 7,
            },
        )
        .unwrap();
    assert!(adam.engine_evaluations <= budget);
    assert!(adam.all_exact, "KC parameter-shift gradients are exact");
    let nm_cut = -nm.optim.value;
    assert!(
        -spsa.optim.value >= nm_cut - 1e-3,
        "spsa {} vs nelder-mead {nm_cut}",
        -spsa.optim.value
    );
    assert!(
        -adam.optim.value >= nm_cut - 1e-3,
        "adam {} vs nelder-mead {nm_cut}",
        -adam.optim.value
    );
}

/// Same acceptance comparison on the VQE Ising grid (two measurement
/// settings, shared entangler angle → order-4 shift rule).
#[test]
fn vqe_ising_gradient_optimizers_match_nelder_mead_at_equal_budget() {
    let vqe = VqeIsing::new(2, 2, 1);
    let ground = vqe.ground_energy_brute_force();
    let budget = 2400usize;
    let x0 = vec![0.3; vqe.num_params()];
    let engine = Engine::new();
    let nm = vqe
        .optimize_via(
            &engine,
            &NelderMead::new().with_max_iterations(budget),
            &x0,
            0,
            7,
        )
        .unwrap();
    let engine = Engine::new();
    let spsa = vqe
        .optimize_gradient_via(
            &engine,
            &x0,
            &VariationalGradientConfig {
                optimizer: GradientOptimizer::Spsa(Spsa::new().with_max_iterations(budget / 6)),
                shots: 0,
                seed: 7,
            },
        )
        .unwrap();
    assert!(spsa.engine_evaluations <= budget);
    let engine = Engine::new();
    let lanes_per_term = 1 + 2 * vqe.num_qubits() + 2 * vqe.grid().num_edges();
    let adam = vqe
        .optimize_gradient_via(
            &engine,
            &x0,
            &VariationalGradientConfig {
                optimizer: GradientOptimizer::Adam(
                    Adam::new().with_max_iterations(budget / (2 * lanes_per_term)),
                ),
                shots: 0,
                seed: 7,
            },
        )
        .unwrap();
    assert!(adam.engine_evaluations <= budget);
    assert!(adam.all_exact);
    assert_eq!(
        engine.cache().misses(),
        2,
        "two measurement settings, two compiles for the whole run"
    );
    for (name, r) in [("spsa", &spsa), ("adam", &adam)] {
        assert!(
            r.optim.value <= nm.value + 1e-3,
            "{name} {} vs nelder-mead {}",
            r.optim.value,
            nm.value
        );
        assert!(
            r.optim.value >= ground - 1e-6,
            "{name} beat the ground state"
        );
    }
}

/// Gradient-loop trajectories are bit-for-bit reproducible across thread
/// counts and batch widths, for both optimizers, on a multi-term
/// objective.
#[test]
fn gradient_loop_trajectories_are_reproducible() {
    let vqe = VqeIsing::new(2, 2, 1);
    let x0 = vec![0.25; vqe.num_params()];
    let run = |threads: usize, batch: usize, adam: bool| {
        let engine = Engine::with_options(
            EngineOptions::default()
                .with_threads(threads)
                .with_batch(batch),
        );
        let optimizer = if adam {
            GradientOptimizer::Adam(Adam::new().with_max_iterations(6))
        } else {
            GradientOptimizer::Spsa(Spsa::new().with_max_iterations(12))
        };
        vqe.optimize_gradient_via(
            &engine,
            &x0,
            &VariationalGradientConfig {
                optimizer,
                shots: 0,
                seed: 13,
            },
        )
        .unwrap()
    };
    for adam in [true, false] {
        let base = run(1, 1, adam);
        for (threads, batch) in [(3usize, 4usize), (8, 16)] {
            let got = run(threads, batch, adam);
            assert_eq!(
                base.optim.x, got.optim.x,
                "adam={adam} t={threads} b={batch}"
            );
            assert_eq!(base.optim.value.to_bits(), got.optim.value.to_bits());
            assert_eq!(base.engine_evaluations, got.engine_evaluations);
        }
    }
}
