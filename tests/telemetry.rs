//! Telemetry integration tests: the observability contract end to end.
//!
//! * Enabling telemetry must not change a single output bit — sweeps and
//!   gradients are compared bitwise across thread counts and batch widths
//!   with the flag on and off.
//! * Snapshots must be internally consistent even while many threads
//!   record concurrently: well-formed sorted-unique paths, histogram
//!   counts that equal their bucket sums, and counters that only grow.
//! * `Planner::explain` must agree with `Planner::plan` on every circuit,
//!   because the explanation *is* the planning decision, annotated.
//!
//! The enable flag is process-global, so every test that flips it holds a
//! file-local mutex (and restores the previous state before releasing it).

use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::engine::{
    ArtifactCache, BackendKind, Engine, EngineOptions, KcBackend, PlanHint, Planner, SweepExecutor,
    SweepPoint, SweepSpec,
};
use qkc::telemetry;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes tests that touch the process-global telemetry flag/registry.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the prior enable state when a test body returns or panics.
struct FlagGuard(bool);

impl FlagGuard {
    fn set(on: bool) -> Self {
        Self(telemetry::set_enabled(on))
    }
}

impl Drop for FlagGuard {
    fn drop(&mut self) {
        telemetry::set_enabled(self.0);
    }
}

fn noisy_sweep_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(0)
        .rx(0, Param::symbol("theta"))
        .depolarize(0, 0.02)
        .cnot(0, 1)
        .rx(1, Param::symbol("theta"))
        .phase_damp(1, 0.1)
        .cnot(1, 2);
    c
}

fn sweep_params(n: usize) -> Vec<ParamMap> {
    (0..n)
        .map(|i| ParamMap::from_pairs([("theta", 0.15 + 0.07 * i as f64)]))
        .collect()
}

fn run_sweep(enabled: bool, threads: usize, batch: usize) -> Vec<SweepPoint> {
    let _flag = FlagGuard::set(enabled);
    let backend = KcBackend::new(Arc::new(ArtifactCache::new()), Default::default());
    let obs = |bits: usize| bits as f64 - 0.5;
    let spec = SweepSpec {
        shots: 64,
        observable: Some(&obs),
        keep_samples: true,
        seed: 41,
    };
    SweepExecutor::new(threads)
        .with_batch(batch)
        .run(&backend, &noisy_sweep_circuit(), &sweep_params(24), &spec)
        .expect("sweep")
}

#[test]
fn enabling_telemetry_never_changes_sweep_results() {
    let _guard = lock();
    let want = run_sweep(false, 1, 1);
    for threads in [1usize, 2, 4] {
        for batch in [1usize, 16] {
            let off = run_sweep(false, threads, batch);
            let on = run_sweep(true, threads, batch);
            assert_eq!(
                off, want,
                "threads={threads} batch={batch}: disabled run diverged"
            );
            assert_eq!(
                on, want,
                "threads={threads} batch={batch}: enabled run diverged"
            );
            // PartialEq on f64 admits 0.0 == -0.0; the contract is bitwise.
            for (a, b) in on.iter().zip(&want) {
                match (a.expectation, b.expectation) {
                    (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }
}

#[test]
fn enabling_telemetry_never_changes_gradients() {
    let _guard = lock();
    let mut c = Circuit::new(2);
    c.h(0)
        .zz(0, 1, Param::symbol("g"))
        .rx(0, Param::symbol("b0"))
        .rx(1, Param::symbol("b1"));
    let params = ParamMap::from_pairs([("g", 0.45), ("b0", 0.25), ("b1", 0.31)]);
    let obs = |bits: usize| bits.count_ones() as f64;
    let grad = |enabled: bool, threads: usize| {
        let _flag = FlagGuard::set(enabled);
        let engine = Engine::with_options(
            EngineOptions::default()
                .with_backend(BackendKind::KnowledgeCompilation)
                .with_threads(threads),
        );
        engine.gradient(&c, &params, &obs, None).expect("gradient")
    };
    let want = grad(false, 1);
    for threads in [1usize, 2, 4] {
        let on = grad(true, threads);
        assert_eq!(on.value.to_bits(), want.value.to_bits());
        assert_eq!(on.gradient.len(), want.gradient.len());
        for (a, b) in on.gradient.iter().zip(&want.gradient) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}: gradient diverged under telemetry"
            );
        }
    }
}

#[test]
fn snapshots_stay_consistent_under_concurrent_recording() {
    let _guard = lock();
    let _flag = FlagGuard::set(true);
    telemetry::reset();

    // Four threads, four distinct structures, all through one shared
    // cache: compiles, hits, sweeps, and plans all record concurrently
    // while the main thread snapshots mid-flight.
    let engine = Arc::new(Engine::with_options(
        EngineOptions::default().with_backend(BackendKind::KnowledgeCompilation),
    ));
    let obs = |bits: usize| bits as f64;
    let mut handles = Vec::new();
    for t in 0..4usize {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut c = Circuit::new(2);
            c.h(0).rx(0, Param::symbol("theta")).cnot(0, 1);
            for _ in 0..t {
                c.t(1); // distinct structural hash per thread
            }
            for round in 0..3 {
                let params = sweep_params(8);
                let spec = SweepSpec::expectation(&obs).with_seed(round);
                engine.sweep(&c, &params, &spec).expect("sweep");
            }
        }));
    }

    // Counters must be monotone across successive snapshots, including
    // ones taken while the workers are still recording.
    let mut last: Vec<(String, u64)> = Vec::new();
    let mut check = |snap: &telemetry::Snapshot| {
        let now: Vec<(String, u64)> = snap
            .counters
            .iter()
            .map(|c| (c.path.clone(), c.value))
            .collect();
        for (path, value) in &last {
            let current = snap.counter(path).unwrap_or(0);
            assert!(
                current >= *value,
                "{path} went backwards: {value} -> {current}"
            );
        }
        last = now;
    };
    for _ in 0..8 {
        let snap = telemetry::snapshot();
        check(&snap);
        std::thread::yield_now();
    }
    for h in handles {
        h.join().expect("worker");
    }
    let snap = telemetry::snapshot();
    check(&snap);

    // Structural invariants of the final snapshot.
    assert!(snap.counter("cache/miss").unwrap_or(0) >= 4);
    assert!(snap.counter("sweep/points").unwrap_or(0) >= 4 * 3 * 8);
    // Batched binds record their lane occupancy: every sweep point rides
    // a batch lane, so accumulated width covers the points, and the
    // rendered tree carries the occupancy footer derived from it.
    assert!(
        snap.counter("kernel/batch/width").unwrap_or(0) >= snap.counter("sweep/points").unwrap(),
        "batched binds must record kernel/batch/width"
    );
    assert!(
        snap.render_tree().contains("lane occupancy"),
        "occupancy note missing from the snapshot tree"
    );
    for stats in snap.spans.iter().chain(&snap.sizes) {
        assert!(
            telemetry::path_is_well_formed(&stats.path),
            "malformed path {:?}",
            stats.path
        );
        let bucket_total: u64 = stats.buckets.iter().map(|b| b.count).sum();
        assert_eq!(
            stats.count, bucket_total,
            "{}: histogram count must equal its bucket sum",
            stats.path
        );
    }
    for c in &snap.counters {
        assert!(telemetry::path_is_well_formed(&c.path));
    }
    for family in [
        snap.spans.iter().map(|s| &s.path).collect::<Vec<_>>(),
        snap.sizes.iter().map(|s| &s.path).collect::<Vec<_>>(),
        snap.counters.iter().map(|c| &c.path).collect::<Vec<_>>(),
    ] {
        for pair in family.windows(2) {
            assert!(pair[0] < pair[1], "paths must be sorted and unique");
        }
    }
    telemetry::reset();
}

#[test]
fn resilience_counters_and_retry_latency_are_recorded() {
    use qkc::engine::{CacheOptions, EngineError, FaultPlan, QueryBudget};
    use std::time::Duration;

    let _guard = lock();
    let _flag = FlagGuard::set(true);
    telemetry::reset();

    let scratch = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("qkc-telemetry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    };
    let kc_engine = |options: EngineOptions| {
        Engine::with_options(options.with_backend(BackendKind::KnowledgeCompilation))
    };
    let obs = |bits: usize| bits as f64;
    let circuit = noisy_sweep_circuit();
    let params = sweep_params(6);
    let spec = SweepSpec::expectation(&obs);

    // Transient spill-write failure, an injected first-attempt worker
    // panic, and a per-phase compile delay — all recovered, all counted.
    let retry_dir = scratch("retry");
    kc_engine(
        EngineOptions::default()
            .with_cache(CacheOptions::default().with_spill_dir(&retry_dir))
            .with_fault_plan(
                FaultPlan::seeded(31)
                    .with_spill_write_fail_first(1)
                    .with_panic_at([0])
                    .with_compile_delay_secs(0.0005),
            ),
    )
    .sweep(&circuit, &params, &spec)
    .expect("every injected fault here is recoverable");

    // Permanent spill-write failure: retries exhaust, the cache degrades.
    let degrade_dir = scratch("degrade");
    kc_engine(
        EngineOptions::default()
            .with_cache(CacheOptions::default().with_spill_dir(&degrade_dir))
            .with_fault_plan(FaultPlan::seeded(32).with_spill_write_rate(1.0)),
    )
    .sweep(&circuit, &params, &spec)
    .expect("degradation is a caching mode, not a query failure");

    // A corrupt spill file: quarantined on first touch.
    let quarantine_dir = scratch("quarantine");
    kc_engine(
        EngineOptions::default()
            .with_cache(CacheOptions::default().with_spill_dir(&quarantine_dir)),
    )
    .sweep(&circuit, &params, &spec)
    .expect("clean warm-up run");
    for f in std::fs::read_dir(&quarantine_dir).expect("spill dir") {
        let path = f.expect("entry").path();
        let mut bytes = std::fs::read(&path).expect("spill bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt spill file");
    }
    kc_engine(
        EngineOptions::default()
            .with_cache(CacheOptions::default().with_spill_dir(&quarantine_dir)),
    )
    .sweep(&circuit, &params, &spec)
    .expect("quarantine costs one recompile, not the query");

    // An already-expired deadline: the typed error ticks its counter.
    std::thread::sleep(Duration::from_millis(1));
    let expired = kc_engine(
        EngineOptions::default()
            .with_budget(QueryBudget::unlimited().with_deadline(Duration::ZERO)),
    )
    .sweep(&circuit, &params, &spec);
    assert!(matches!(expired, Err(EngineError::DeadlineExceeded { .. })));

    let snap = telemetry::snapshot();
    for counter in [
        "fault/injected/spill_write",
        "fault/injected/worker_panic",
        "fault/injected/compile_delay",
        "cache/spill/retry",
        "cache/spill/quarantined",
        "sweep/point_retry",
        "budget/deadline_exceeded",
    ] {
        assert!(
            snap.counter(counter).unwrap_or(0) >= 1,
            "{counter} was never ticked"
        );
    }
    assert_eq!(
        snap.counter("cache/spill/degraded"),
        Some(1),
        "degradation latches once, not per retry"
    );
    let retry_latency = snap
        .spans
        .iter()
        .find(|s| s.path == "cache/spill/retry_latency")
        .expect("retried spill I/O records its latency");
    assert!(retry_latency.count >= 1);

    for dir in [retry_dir, degrade_dir, quarantine_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
    telemetry::reset();
}

#[test]
fn planner_explain_agrees_with_plan_on_random_circuits() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let planner = Planner::new();
    for trial in 0..40 {
        let n = rng.gen_range(2usize..14);
        let gates = rng.gen_range(4usize..40);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            let q = rng.gen_range(0usize..n);
            match rng.gen_range(0usize..5) {
                0 => {
                    c.h(q);
                }
                1 => {
                    c.t(q);
                }
                2 => {
                    c.rx(q, 0.1 + rng.gen::<f64>());
                }
                3 => {
                    let p = rng.gen_range(0usize..n - 1);
                    c.cnot(p, p + 1);
                }
                _ => {
                    c.depolarize(q, 0.01);
                }
            }
        }
        for hint in [PlanHint::SingleShot, PlanHint::ParameterSweep] {
            let plan = planner.plan(&c, hint);
            let explanation = planner.explain(&c, hint);
            assert_eq!(
                explanation.chosen, plan.backend,
                "trial {trial}: explain chose a different backend than plan"
            );
            assert_eq!(explanation.reason, plan.reason, "trial {trial}");
            assert_eq!(explanation.candidates.len(), 4, "trial {trial}");
            let chosen = explanation
                .candidates
                .iter()
                .find(|cand| cand.backend == explanation.chosen)
                .expect("chosen backend appears among the candidates");
            assert!(
                chosen.feasible,
                "trial {trial}: chose an infeasible backend"
            );
        }
    }
}
