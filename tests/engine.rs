//! Engine integration tests: the planner-selected backend must agree with
//! explicitly chosen ground-truth simulators, the artifact cache must
//! compile each structure exactly once, and parallel sweeps must be
//! deterministic in their seed regardless of thread count.

use qkc::circuit::{Circuit, Param, ParamMap};
use qkc::densitymatrix::DensityMatrixSimulator;
use qkc::engine::{
    BackendKind, Engine, EngineOptions, KcBackend, PlanHint, SweepExecutor, SweepSpec,
};
use qkc::statevector::StateVectorSimulator;
use std::sync::Arc;

fn bell() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).cnot(0, 1);
    c
}

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cnot(q, q + 1);
    }
    c
}

fn noisy_rx() -> Circuit {
    let mut c = Circuit::new(2);
    c.rx(0, Param::symbol("theta"))
        .depolarize(0, 0.05)
        .cnot(0, 1)
        .phase_damp(1, 0.2);
    c
}

// ---------------------------------------------------------------------------
// Cross-backend equivalence
// ---------------------------------------------------------------------------

#[test]
fn engine_matches_state_vector_on_pure_circuits() {
    let engine = Engine::new();
    let sv = StateVectorSimulator::new();
    for circuit in [bell(), ghz(3), ghz(5)] {
        let want = sv.probabilities(&circuit, &ParamMap::new()).unwrap();
        let got = engine.probabilities(&circuit, &ParamMap::new()).unwrap();
        assert_eq!(got.len(), want.len());
        for (x, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-9, "P({x}): {g} vs {w}");
        }
    }
}

#[test]
fn engine_matches_density_matrix_on_noisy_circuits() {
    let engine = Engine::new();
    let dm = DensityMatrixSimulator::new();
    for theta in [0.4, 1.3, 2.8] {
        let params = ParamMap::from_pairs([("theta", theta)]);
        let want = dm.probabilities(&noisy_rx(), &params).unwrap();
        let got = engine.probabilities(&noisy_rx(), &params).unwrap();
        for (x, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-9, "theta {theta}, P({x}): {g} vs {w}");
        }
    }
}

#[test]
fn every_capable_backend_agrees_on_every_probe_circuit() {
    // Force each backend in turn; all must tell the same story within
    // their capability envelope.
    let params = ParamMap::from_pairs([("theta", 0.9)]);
    for circuit in [bell(), ghz(4), noisy_rx()] {
        let reference =
            Engine::with_options(EngineOptions::default().with_backend(BackendKind::DensityMatrix))
                .probabilities(&circuit, &params)
                .unwrap();
        for kind in [
            BackendKind::KnowledgeCompilation,
            BackendKind::StateVector,
            BackendKind::TensorNetwork,
        ] {
            let engine = Engine::with_options(EngineOptions::default().with_backend(kind));
            match engine.probabilities(&circuit, &params) {
                Ok(got) => {
                    for (x, (&g, &w)) in got.iter().zip(&reference).enumerate() {
                        assert!((g - w).abs() < 1e-9, "{kind:?} P({x}): {g} vs {w}");
                    }
                }
                Err(qkc::engine::EngineError::Unsupported { .. }) => {
                    assert!(
                        circuit.is_noisy(),
                        "{kind:?} must support exact pure probabilities"
                    );
                }
                Err(e) => panic!("{kind:?}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn sampled_distributions_match_exact_distributions() {
    let engine = Engine::new();
    let params = ParamMap::from_pairs([("theta", 1.1)]);
    let exact = engine.probabilities(&noisy_rx(), &params).unwrap();
    let shots = 40_000;
    let samples = engine.sample(&noisy_rx(), &params, shots, 5).unwrap();
    let mut counts = vec![0usize; exact.len()];
    for s in samples {
        counts[s] += 1;
    }
    for (x, (&c, &p)) in counts.iter().zip(&exact).enumerate() {
        assert!(
            (c as f64 / shots as f64 - p).abs() < 0.02,
            "P({x}): sampled {} vs exact {p}",
            c as f64 / shots as f64
        );
    }
}

#[test]
fn gibbs_fallback_matches_density_matrix_on_unenumerable_noise() {
    // Depolarizing after every gate pushes the joint noise space far past
    // the enumeration budget; the KC backend must fall back to Gibbs
    // sampling and still match the exact diagonal statistically.
    use qkc::circuit::NoiseChannel;
    use qkc::workloads::{Graph, QaoaMaxCut};
    let qaoa = QaoaMaxCut::new(Graph::cycle(3), 1);
    let noisy = qaoa
        .circuit()
        .with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
    let params = qaoa.default_params();
    let want = DensityMatrixSimulator::new()
        .probabilities(&noisy, &params)
        .unwrap();
    let engine = Engine::with_options(
        EngineOptions::default().with_backend(BackendKind::KnowledgeCompilation),
    );
    assert!(
        engine.probabilities(&noisy, &params).is_err(),
        "exact probabilities must be refused past the enumeration budget"
    );
    let shots = 30_000;
    let samples = engine.sample(&noisy, &params, shots, 19).unwrap();
    let mut counts = [0usize; 8];
    for s in samples {
        counts[s] += 1;
    }
    for (x, (&c, &p)) in counts.iter().zip(&want).enumerate() {
        assert!(
            (c as f64 / shots as f64 - p).abs() < 0.02,
            "P({x}): gibbs {} vs exact {p}",
            c as f64 / shots as f64
        );
    }
}

// ---------------------------------------------------------------------------
// Cache semantics
// ---------------------------------------------------------------------------

#[test]
fn same_structure_different_params_compiles_once() {
    let engine = Engine::new();
    for i in 0..20 {
        let params = ParamMap::from_pairs([("theta", 0.1 * i as f64)]);
        engine.probabilities(&noisy_rx(), &params).unwrap();
    }
    assert_eq!(engine.cache().misses(), 1, "one structure, one compile");
    assert_eq!(engine.cache().hits(), 19);
}

#[test]
fn changed_structure_recompiles() {
    let engine = Engine::new();
    let params = ParamMap::from_pairs([("theta", 0.5)]);
    engine.probabilities(&noisy_rx(), &params).unwrap();
    let mut widened = noisy_rx();
    widened.h(1);
    engine.probabilities(&widened, &params).unwrap();
    assert_eq!(engine.cache().misses(), 2, "new structure, new compile");
    // And going back to the first structure is a hit, not a recompile.
    engine.probabilities(&noisy_rx(), &params).unwrap();
    assert_eq!(engine.cache().misses(), 2);
}

#[test]
fn renaming_a_symbol_is_a_structural_change() {
    // Forced onto the compiled backend: a 1-qubit pure circuit would
    // otherwise plan to the state vector and never touch the cache.
    let engine = Engine::with_options(
        EngineOptions::default().with_backend(BackendKind::KnowledgeCompilation),
    );
    let mut a = Circuit::new(1);
    a.rx(0, Param::symbol("alpha"));
    let mut b = Circuit::new(1);
    b.rx(0, Param::symbol("beta"));
    engine
        .probabilities(&a, &ParamMap::from_pairs([("alpha", 0.3)]))
        .unwrap();
    engine
        .probabilities(&b, &ParamMap::from_pairs([("beta", 0.3)]))
        .unwrap();
    assert_eq!(engine.cache().misses(), 2);
}

// ---------------------------------------------------------------------------
// Sweep determinism
// ---------------------------------------------------------------------------

#[test]
fn sweep_results_are_independent_of_thread_count() {
    let backend = KcBackend::new(
        Arc::new(qkc::engine::ArtifactCache::new()),
        Default::default(),
    );
    let params: Vec<ParamMap> = (0..13)
        .map(|i| ParamMap::from_pairs([("theta", 0.17 * i as f64)]))
        .collect();
    let obs = |bits: usize| bits as f64;
    let spec = SweepSpec {
        shots: 200,
        observable: Some(&obs),
        keep_samples: true,
        seed: 42,
    };
    let reference = SweepExecutor::new(1)
        .run(&backend, &noisy_rx(), &params, &spec)
        .unwrap();
    assert_eq!(reference.len(), params.len());
    for threads in [2, 4, 7, 16] {
        let got = SweepExecutor::new(threads)
            .run(&backend, &noisy_rx(), &params, &spec)
            .unwrap();
        assert_eq!(reference, got, "results changed at {threads} threads");
    }
}

#[test]
fn sweep_seed_actually_matters() {
    let engine = Engine::new();
    let params: Vec<ParamMap> = (1..5)
        .map(|i| ParamMap::from_pairs([("theta", 0.5 * i as f64)]))
        .collect();
    let a = engine
        .sweep(&noisy_rx(), &params, &SweepSpec::samples(64).with_seed(1))
        .unwrap();
    let b = engine
        .sweep(&noisy_rx(), &params, &SweepSpec::samples(64).with_seed(2))
        .unwrap();
    assert_ne!(a, b, "different seeds must give different sample streams");
}

#[test]
fn sweep_points_preserve_input_order() {
    let engine = Engine::new();
    let params: Vec<ParamMap> = (0..11)
        .map(|i| ParamMap::from_pairs([("theta", 0.3 * i as f64)]))
        .collect();
    let obs = |bits: usize| if bits == 0b11 { 1.0 } else { 0.0 };
    let points = engine
        .sweep(
            &{
                let mut c = Circuit::new(2);
                c.rx(0, Param::symbol("theta")).cnot(0, 1);
                c
            },
            &params,
            &SweepSpec::expectation(&obs),
        )
        .unwrap();
    for (i, p) in points.iter().enumerate() {
        assert_eq!(p.index, i);
        let want = (0.3 * i as f64 / 2.0).sin().powi(2);
        assert!((p.expectation.unwrap() - want).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Planner behavior through the facade
// ---------------------------------------------------------------------------

#[test]
fn planner_routes_by_shape_and_override_wins() {
    let engine = Engine::new();
    // Pure, small, single-shot: state vector.
    assert_eq!(
        engine.plan_with_hint(&ghz(5), PlanHint::SingleShot).backend,
        BackendKind::StateVector
    );
    // Noisy with few events: knowledge compilation, exactly.
    assert_eq!(
        engine.plan(&noisy_rx()).backend,
        BackendKind::KnowledgeCompilation
    );
    // Override.
    let forced =
        Engine::with_options(EngineOptions::default().with_backend(BackendKind::StateVector));
    assert_eq!(forced.plan(&noisy_rx()).backend, BackendKind::StateVector);
    let kc_backend = forced.backend(BackendKind::KnowledgeCompilation);
    assert_eq!(kc_backend.kind(), BackendKind::KnowledgeCompilation);
}
