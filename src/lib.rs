//! QKC — a knowledge-compilation simulator for noisy variational quantum
//! algorithms, reproducing Huang et al., *Logical Abstractions for Noisy
//! Variational Quantum Algorithm Simulation* (ASPLOS '21).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`engine`] — the unified entry point: backend dispatch, the
//!   compile-once artifact cache, and the parallel sweep executor;
//! * [`circuit`] — circuit IR (gates, noise, parameters, oracles);
//! * [`kc`] — the compiled simulator ([`kc::KcSimulator`]);
//! * [`statevector`], [`densitymatrix`], [`tensornet`] — baselines;
//! * [`workloads`] — QAOA, VQE, RCS, and the validation algorithm suite;
//! * [`optim`] — Nelder–Mead for variational loops;
//! * [`math`], [`bayesnet`], [`cnf`], [`knowledge`] — building blocks;
//! * [`telemetry`] — opt-in spans/counters/histograms across the stack.
//!
//! # Examples
//!
//! ```
//! use qkc::circuit::{Circuit, ParamMap};
//! use qkc::kc::KcSimulator;
//!
//! // The paper's noisy Bell state, compiled once and queried.
//! let mut c = Circuit::new(2);
//! c.h(0).phase_damp(0, 0.36).cnot(0, 1);
//! let sim = KcSimulator::compile(&c, &Default::default());
//! let bound = sim.bind(&ParamMap::new()).unwrap();
//! let rho = bound.density_matrix();
//! assert!((rho[(0, 3)].re - 0.4).abs() < 1e-9); // Equation 3
//! ```

#![forbid(unsafe_code)]

pub use qkc_bayesnet as bayesnet;
pub use qkc_circuit as circuit;
pub use qkc_cnf as cnf;
pub use qkc_core as kc;
pub use qkc_densitymatrix as densitymatrix;
pub use qkc_engine as engine;
pub use qkc_knowledge as knowledge;
pub use qkc_math as math;
pub use qkc_optim as optim;
pub use qkc_statevector as statevector;
pub use qkc_telemetry as telemetry;
pub use qkc_tensornet as tensornet;
pub use qkc_workloads as workloads;
